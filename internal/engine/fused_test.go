package engine_test

import (
	"testing"

	"nshd/internal/core"
	"nshd/internal/engine"
	"nshd/internal/hdc"
	"nshd/internal/tensor"
)

// TestEngineFusedMatchesStaged pins the tentpole contract: the default fused
// tail reproduces the staged chain's predictions on every topology and both
// classifier kernels — bit-exactly, since the fused GEMM keeps the staged
// accumulation order and block packing writes the staged words.
func TestEngineFusedMatchesStaged(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			p, test := buildPipeline(t, v.mut)
			fused, err := engine.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			staged, err := engine.Compile(p, engine.WithStagedTail())
			if err != nil {
				t.Fatal(err)
			}
			want, err := staged.Predict(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fused.Predict(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample %d: fused=%d staged=%d", i, got[i], want[i])
				}
			}

			// The hypervector path must agree bit-for-bit too.
			hw, err := staged.QueryHVs(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			hg, err := fused.QueryHVs(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			for i := range hw.Data {
				if hg.Data[i] != hw.Data[i] {
					t.Fatal("fused QueryHVs differ from staged")
				}
			}
		})
	}
}

// TestEngineRematMatchesFused: rematerializing the projection from its seed
// is bit-identical to the prepacked fused tail, while the encoder's serving
// bytes collapse to the 8-byte seed.
func TestEngineRematMatchesFused(t *testing.T) {
	for _, v := range []variant{
		{"packed", func(c *core.Config) { c.PackedInference = true }},
		{"float", func(c *core.Config) {}},
	} {
		t.Run(v.name, func(t *testing.T) {
			p, test := buildPipeline(t, v.mut)
			fused, err := engine.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			remat, err := engine.Compile(p, engine.WithRemat())
			if err != nil {
				t.Fatal(err)
			}
			want, err := fused.Predict(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			got, err := remat.Predict(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample %d: remat=%d prepack=%d", i, got[i], want[i])
				}
			}
			hw, err := fused.QueryHVs(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			hg, err := remat.QueryHVs(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			for i := range hw.Data {
				if hg.Data[i] != hw.Data[i] {
					t.Fatal("remat QueryHVs differ from prepacked fused")
				}
			}

			// The footprint claim: the remat engine's projection entry is the
			// seed, the prepacked engine's is O(F̂·D), and ModelBytes totals
			// its own breakdown in both.
			var rematProj, fusedProj int64 = -1, -1
			for _, b := range remat.BytesBreakdown() {
				if b.Name == "project@seed" {
					rematProj = b.Bytes
				}
			}
			for _, b := range fused.BytesBreakdown() {
				if b.Name == "project" {
					fusedProj = b.Bytes
				}
			}
			if rematProj != 8 {
				t.Fatalf("remat projection bytes = %d, want 8 (the seed)", rematProj)
			}
			if minProj := int64(p.Proj.F) * int64(p.Proj.D) * 4; fusedProj < minProj {
				t.Fatalf("prepacked projection bytes = %d, want >= %d", fusedProj, minProj)
			}
			for _, e := range []*engine.Engine{fused, remat} {
				var sum int64
				for _, b := range e.BytesBreakdown() {
					sum += b.Bytes
				}
				if sum != e.ModelBytes() || sum <= 0 {
					t.Fatalf("ModelBytes %d != breakdown sum %d", e.ModelBytes(), sum)
				}
			}
			if remat.ModelBytes() >= fused.ModelBytes() {
				t.Fatalf("remat footprint %d not below prepacked %d", remat.ModelBytes(), fused.ModelBytes())
			}
		})
	}
}

// TestEngineFoldedTail: forcing the manifold-FC fold keeps predictions equal
// to the staged chain (the argmax-identical contract) and the folded engine
// reports the absorbed manifold in its stage list.
func TestEngineFoldedTail(t *testing.T) {
	for _, v := range []variant{
		{"float", func(c *core.Config) {}},
		{"packed", func(c *core.Config) { c.PackedInference = true }},
	} {
		t.Run(v.name, func(t *testing.T) {
			p, test := buildPipeline(t, v.mut)
			folded, err := engine.Compile(p, engine.WithFoldedTail())
			if err != nil {
				t.Fatal(err)
			}
			staged, err := engine.Compile(p, engine.WithStagedTail())
			if err != nil {
				t.Fatal(err)
			}
			want, err := staged.Predict(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			got, err := folded.Predict(test.Images)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample %d: folded=%d staged=%d", i, got[i], want[i])
				}
			}
			names := folded.Stages()
			for _, n := range names {
				if n == "manifold" {
					t.Fatalf("folded engine still compiles a manifold stage: %v", names)
				}
			}
			if names[len(names)-1][:20] != "fuse(manifold*projec" {
				t.Fatalf("folded tail not reported: %v", names)
			}
		})
	}
}

// TestEngineTailOptionErrors: invalid tail combinations fail Compile with
// errors instead of compiling a wrong plan — in particular the nil-manifold
// fold guard (LSH and direct pipelines have no FC to fold).
func TestEngineTailOptionErrors(t *testing.T) {
	lsh, _ := buildPipeline(t, func(c *core.Config) { c.UseManifold = false; c.LSHDim = 20 })
	if _, err := engine.Compile(lsh, engine.WithFoldedTail()); err == nil {
		t.Fatal("folding an LSH-only pipeline must fail Compile")
	}
	if e, err := engine.Compile(lsh); err != nil || e == nil {
		t.Fatalf("LSH pipeline must still compile fused: %v", err)
	}

	p, _ := buildPipeline(t, func(c *core.Config) {})
	if _, err := engine.Compile(p, engine.WithFoldedTail(), engine.WithRemat()); err == nil {
		t.Fatal("fold+remat must fail Compile")
	}
	if _, err := engine.Compile(p, engine.WithFoldedTail(), engine.WithStagedTail()); err == nil {
		t.Fatal("fold+staged must fail Compile")
	}
	if _, err := engine.Compile(p, engine.WithRemat(), engine.WithStagedTail()); err == nil {
		t.Fatal("remat+staged must fail Compile")
	}
	if _, err := engine.Compile(p, engine.Int8, engine.WithFoldedTail()); err == nil {
		t.Fatal("int8+fold must fail Compile")
	}

	// An unseeded projection (hand-built pipelines, legacy snapshots) cannot
	// rematerialize.
	p.Proj = hdc.NewProjection(tensor.NewRNG(1), p.Proj.F, p.Proj.D)
	if _, err := engine.Compile(p, engine.WithRemat()); err == nil {
		t.Fatal("remat on an unseeded projection must fail Compile")
	}
	if e, err := engine.Compile(p); err != nil || e == nil {
		t.Fatalf("unseeded pipeline must still compile fused: %v", err)
	}
}

// TestEngineZeroAllocTailModes extends the steady-state zero-alloc gate to
// every tail strategy (its name keeps it inside the `make alloc` run).
func TestEngineZeroAllocTailModes(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts []engine.Option
	}{
		{"fused", nil},
		{"remat", []engine.Option{engine.WithRemat()}},
		{"folded", []engine.Option{engine.WithFoldedTail()}},
		{"staged", []engine.Option{engine.WithStagedTail()}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			p, test := buildPipeline(t, func(c *core.Config) { c.PackedInference = true })
			e, err := engine.Compile(p, mode.opts...)
			if err != nil {
				t.Fatal(err)
			}
			n := e.ChunkSize()
			if n > test.Len() {
				n = test.Len()
			}
			sample := test.Images.Len() / test.Len()
			imgs := tensor.FromSlice(test.Images.Data[:n*sample], n, 3, 16, 16)
			preds := make([]int, n)
			if err := e.PredictInto(imgs, preds); err != nil {
				t.Fatal(err)
			}
			if a := testing.AllocsPerRun(100, func() {
				if err := e.PredictInto(imgs, preds); err != nil {
					t.Fatal(err)
				}
			}); a != 0 {
				t.Fatalf("%s PredictInto allocated %.1f times per run", mode.name, a)
			}
		})
	}
}

// TestEngineInt8FusedTail: the int8 engine's float tail fuses like the
// float engine's (satellite: int8 predictions unchanged by the fused tail,
// and quantized-layer coverage is not affected by the tail strategy).
func TestEngineInt8FusedTail(t *testing.T) {
	p, test := buildPipeline(t, func(c *core.Config) { c.PackedInference = true })
	calib := engine.WithCalibration(test.Images)
	fused, err := engine.Compile(p, engine.Int8, calib)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := engine.Compile(p, engine.Int8, calib, engine.WithStagedTail())
	if err != nil {
		t.Fatal(err)
	}
	want, err := staged.Predict(test.Images)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fused.Predict(test.Images)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: int8 fused=%d staged=%d", i, got[i], want[i])
		}
	}
	fc, ft := fused.Int8Coverage()
	sc, st := staged.Int8Coverage()
	if fc != sc || ft != st || fc == 0 {
		t.Fatalf("int8 coverage changed by tail strategy: fused %d/%d staged %d/%d", fc, ft, sc, st)
	}
}
