package engine_test

import (
	"testing"

	"nshd/internal/cnn"
	"nshd/internal/core"
	"nshd/internal/dataset"
	"nshd/internal/engine"
	"nshd/internal/tensor"
)

// benchSetup mirrors the perf harness: mobilenetv2 prefix, paper-scale D.
func benchSetup(b *testing.B, packed bool) (*core.Pipeline, *engine.Engine, *tensor.Tensor) {
	b.Helper()
	train, _ := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: 10, Train: 256, Test: 8, Size: 32, Noise: 0.2, Seed: 21,
	})
	zoo, err := cnn.Build("mobilenetv2", tensor.NewRNG(22), 10)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(5, 10)
	cfg.Seed = 23
	cfg.PackedInference = packed
	p, err := core.New(zoo, cfg)
	if err != nil {
		b.Fatal(err)
	}
	feats := p.ExtractFeatures(train.Images)
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, train.Labels)
	e, err := engine.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	return p, e, train.Images
}

func BenchmarkEnginePredict(b *testing.B) {
	_, e, imgs := benchSetup(b, false)
	preds := make([]int, imgs.Shape[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.PredictInto(imgs, preds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePredictBatch1 is the single-request latency shape the
// perf-latency harness measures: vgg16 prefix, batch 1, fused tail.
func BenchmarkEnginePredictBatch1(b *testing.B) {
	train, _ := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: 10, Train: 64, Test: 8, Size: 32, Noise: 0.2, Seed: 71,
	})
	zoo, err := cnn.Build("vgg16", tensor.NewRNG(72), 10)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(8, 10)
	cfg.Seed = 73
	cfg.D = 3000
	cfg.FHat = 100
	p, err := core.New(zoo, cfg)
	if err != nil {
		b.Fatal(err)
	}
	feats := p.ExtractFeatures(train.Images)
	_, _, signed := p.Symbolize(feats, false)
	p.HD.InitBundle(signed, train.Labels)
	e, err := engine.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	sample := train.Images.Len() / train.Images.Shape[0]
	img := tensor.FromSlice(train.Images.Data[:sample], 1,
		train.Images.Shape[1], train.Images.Shape[2], train.Images.Shape[3])
	preds := make([]int, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.PredictInto(img, preds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineDirectPredict(b *testing.B) {
	p, _, imgs := benchSetup(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictDirect(imgs)
	}
}
