package tensor

import (
	"math/rand"
	"testing"
)

// TestConvMulMatchesIm2Col pins the implicit-GEMM conv bit-identical to the
// materialized im2col + MatMulSerialInto path across odd geometries: strides
// 1–3, pads 0–2, kernel sizes through 5, spatial extents and channel counts
// that exercise non-multiple-of-16 tile widths, KC-crossing K dims, and
// row-tail OutC values.
func TestConvMulMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	geoms := []ConvGeom{
		{InC: 1, InH: 1, InW: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
		{InC: 3, InH: 5, InW: 7, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 2, InH: 9, InW: 9, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{InC: 4, InH: 11, InW: 6, KH: 5, KW: 3, StrideH: 1, StrideW: 1, PadH: 2, PadW: 0},
		{InC: 5, InH: 7, InW: 13, KH: 3, KW: 5, StrideH: 3, StrideW: 2, PadH: 0, PadW: 2},
		{InC: 7, InH: 17, InW: 17, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 1, InH: 33, InW: 33, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2},
		{InC: 31, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 6, InH: 10, InW: 31, KH: 2, KW: 2, StrideH: 2, StrideW: 3, PadH: 1, PadW: 1},
	}
	for gi, g := range geoms {
		if err := g.Validate(); err != nil {
			t.Fatalf("geom %d: %v", gi, err)
		}
		for _, outC := range []int{1, 3, 4, 17} {
			kdim := g.InC * g.KH * g.KW
			nOut := g.OutH() * g.OutW()
			x := make([]float32, g.InC*g.InH*g.InW)
			for i := range x {
				x[i] = rng.Float32()*2 - 1
			}
			wmat := New(outC, kdim)
			for i := range wmat.Data {
				wmat.Data[i] = rng.Float32()*2 - 1
			}

			cols := New(kdim, nOut)
			Im2Col(g, x, cols)
			want := New(outC, nOut)
			MatMulSerialInto(want, wmat, cols, make([]float32, GemmScratch()))

			got := New(outC, nOut)
			ConvMulSerialInto(got, wmat, g, x, make([]float32, ConvGemmScratch()))

			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("geom %d outC %d: element %d = %v, want %v (implicit vs im2col)",
						gi, outC, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestIm2ColTileMatchesIm2Col checks the tile generator alone against full
// Im2Col over every (KC, NC)-aligned and deliberately misaligned subrange.
func TestIm2ColTileMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	g := ConvGeom{InC: 3, InH: 13, InW: 11, KH: 3, KW: 3, StrideH: 2, StrideW: 1, PadH: 1, PadW: 2}
	kdim := g.InC * g.KH * g.KW
	nOut := g.OutH() * g.OutW()
	x := make([]float32, g.InC*g.InH*g.InW)
	for i := range x {
		x[i] = rng.Float32()
	}
	cols := New(kdim, nOut)
	Im2Col(g, x, cols)
	tile := make([]float32, kdim*nOut)
	for _, r := range [][4]int{
		{0, kdim, 0, nOut},
		{0, kdim, 7, nOut - 3},
		{5, 19, 0, 16},
		{2, 3, nOut - 1, nOut},
		{0, 9, 1, 2},
	} {
		pb, pe, jb, je := r[0], r[1], r[2], r[3]
		ld := je - jb
		sub := tile[:(pe-pb)*ld]
		for i := range sub {
			sub[i] = -999
		}
		im2colTile(g, x, 0, g.InH, sub, ld, pb, pe, jb, je)
		for p := pb; p < pe; p++ {
			for j := jb; j < je; j++ {
				if got, want := sub[(p-pb)*ld+j-jb], cols.Data[p*nOut+j]; got != want {
					t.Fatalf("tile [%d:%d)x[%d:%d) element (%d,%d) = %v, want %v", pb, pe, jb, je, p, j, got, want)
				}
			}
		}
	}
}
