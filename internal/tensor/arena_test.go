package tensor

import (
	"testing"
)

func TestArenaMeasureFreezeReuse(t *testing.T) {
	a := NewArena()
	// Measuring pass: emulate a batch — two activations plus transient scratch.
	x := a.Alloc(4, 8)
	m := a.Mark()
	scratch := a.Floats(100)
	_ = scratch
	a.Release(m)
	y := a.Alloc(4, 8)
	w := a.Words(3)
	_ = x
	_ = y
	_ = w
	if a.PeakFloats() != 4*8+100 {
		t.Fatalf("peak floats = %d, want %d", a.PeakFloats(), 4*8+100)
	}
	a.Freeze()

	// Frozen steady state must hand out slab-backed buffers with no allocation.
	allocs := testing.AllocsPerRun(100, func() {
		a.Reset()
		x := a.Alloc(4, 8)
		m := a.Mark()
		s := a.Floats(100)
		s[0] = 1
		a.Release(m)
		y := a.Alloc(4, 8)
		copy(y.Data, x.Data)
		w := a.Words(3)
		w[0] = 7
	})
	if allocs != 0 {
		t.Fatalf("frozen arena allocated %.1f times per run, want 0", allocs)
	}
}

func TestArenaFrozenOverflowPanics(t *testing.T) {
	a := NewArena()
	a.Floats(16)
	a.Freeze()
	a.Reset()
	a.Floats(16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on frozen slab overflow")
		}
	}()
	a.Floats(1)
}

func TestArenaWrapAndClone(t *testing.T) {
	a := NewArena()
	data := []float32{1, 2, 3, 4, 5, 6}
	v := a.Wrap(data, 2, 3)
	if v.Shape[0] != 2 || v.Shape[1] != 3 || &v.Data[0] != &data[0] {
		t.Fatal("Wrap must view the given data with the given shape")
	}
	a.Alloc(10)
	a.Freeze()

	c := a.CloneEmpty()
	c.Wrap(data, 3, 2)
	got := c.Alloc(10)
	if len(got.Data) != 10 {
		t.Fatalf("clone Alloc returned %d floats", len(got.Data))
	}

	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Wrap with mismatched shape")
		}
	}()
	c.Wrap(data, 4, 2)
}

func TestMatMulSerialIntoMatchesParallel(t *testing.T) {
	rng := NewRNG(7)
	scratch := make([]float32, GemmScratch())
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {17, 33, 9}, {64, 128, 70}, {130, 257, 300}} {
		m, n, k := dims[0], dims[1], dims[2]
		a, b := New(m, k), New(k, n)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)
		want := MatMul(a, b)
		got := New(m, n)
		MatMulSerialInto(got, a, b, scratch)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("m=%d n=%d k=%d: serial[%d]=%v parallel=%v", m, n, k, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulSerialIntoZeroAlloc(t *testing.T) {
	rng := NewRNG(3)
	a, b := New(24, 64), New(64, 80)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	dst := New(24, 80)
	scratch := make([]float32, GemmScratch())
	allocs := testing.AllocsPerRun(20, func() {
		MatMulSerialInto(dst, a, b, scratch)
	})
	if allocs != 0 {
		t.Fatalf("MatMulSerialInto allocated %.1f times per run, want 0", allocs)
	}
}

func TestMatMulTSerialIntoMatchesParallel(t *testing.T) {
	rng := NewRNG(11)
	for _, dims := range [][3]int{{1, 1, 1}, {5, 3, 7}, {33, 10, 70}, {100, 4, 512}} {
		m, n, k := dims[0], dims[1], dims[2]
		a, b := New(m, k), New(n, k)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)
		want := MatMulT(a, b)
		got := New(m, n)
		MatMulTSerialInto(got, a, b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("m=%d n=%d k=%d: serial[%d]=%v parallel=%v", m, n, k, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestDotFastMatchesMatMulT(t *testing.T) {
	rng := NewRNG(13)
	for _, k := range []int{1, 7, 8, 70, 512, 1000} {
		a, b := New(1, k), New(1, k)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)
		want := MatMulT(a, b).Data[0]
		if got := DotFast(a.Data, b.Data); got != want {
			t.Fatalf("k=%d: DotFast=%v MatMulT=%v", k, got, want)
		}
	}
}

func TestSignIntoMatchesSign(t *testing.T) {
	rng := NewRNG(5)
	src := New(6, 9)
	rng.FillNormal(src, 0, 1)
	src.Data[0] = 0 // zero maps to +1
	want := Sign(src)
	dst := New(6, 9)
	SignInto(dst, src)
	for i := range want.Data {
		if dst.Data[i] != want.Data[i] {
			t.Fatalf("SignInto[%d]=%v, Sign=%v", i, dst.Data[i], want.Data[i])
		}
	}
	// In-place aliasing.
	SignInto(src, src)
	for i := range want.Data {
		if src.Data[i] != want.Data[i] {
			t.Fatalf("in-place SignInto[%d]=%v, want %v", i, src.Data[i], want.Data[i])
		}
	}
}

func TestArgmaxRowsInto(t *testing.T) {
	v := FromSlice([]float32{1, 3, 3, 0, -5, -2, -9, -2}, 2, 4)
	out := make([]int, 2)
	ArgmaxRowsInto(out, v)
	want := ArgmaxRows(v)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("row %d: ArgmaxRowsInto=%d ArgmaxRows=%d", i, out[i], want[i])
		}
	}
	if out[0] != 1 || out[1] != 1 {
		t.Fatalf("tie-break/negative handling wrong: %v", out)
	}
}
