package tensor

import "fmt"

// Arena is a region (bump) allocator backing the serving engine's
// allocation-free forward pass. Activations, scratch buffers, packed-query
// words and tensor headers are all carved out of preallocated slabs; a
// steady-state inference batch therefore performs zero heap allocations.
//
// An arena has two modes:
//
//   - measuring (fresh from NewArena): every allocation is satisfied with a
//     plain make() while high-water marks record the peak simultaneous usage
//     of each slab. The engine compiles by running one warmup batch through
//     a measuring arena.
//   - frozen (after Freeze): the slabs are sized to the recorded peaks and
//     allocations bump offsets into them. Exceeding a frozen slab panics —
//     it means the warmup did not cover the steady-state shape, which is an
//     engine sizing bug, not a runtime condition.
//
// Mark/Release give stack discipline for transient scratch (e.g. an im2col
// matrix that dies with its layer) while activations allocated before the
// mark survive. Reset recycles the whole arena between batches.
//
// Returned buffers are NOT zeroed: every serving kernel fully overwrites its
// output, and skipping the clear saves a memory pass per layer.
//
// An Arena is owned by one goroutine at a time; the engine keeps one arena
// per concurrent worker.
type Arena struct {
	frozen bool

	floats []float32
	foff   int
	fpeak  int

	words []uint64
	woff  int
	wpeak int

	ints  []int
	ioff  int
	ipeak int

	hdrs  []Tensor
	hoff  int
	hpeak int

	bytes []uint8
	boff  int
	bpeak int

	i32s    []int32
	i32off  int
	i32peak int

	f64s    []float64
	f64off  int
	f64peak int

	qhdrs  []QTensor
	qhoff  int
	qhpeak int
}

// NewArena returns an empty arena in measuring mode.
func NewArena() *Arena { return &Arena{} }

// ArenaMark is a snapshot of all slab offsets, for stack-style release.
type ArenaMark struct{ f, w, i, h, b, i32, f64, qh int }

// Mark snapshots the arena's current offsets.
func (a *Arena) Mark() ArenaMark {
	return ArenaMark{f: a.foff, w: a.woff, i: a.ioff, h: a.hoff, b: a.boff, i32: a.i32off, f64: a.f64off, qh: a.qhoff}
}

// Release rewinds the arena to a previous Mark, freeing everything allocated
// since. Buffers handed out after the mark must no longer be used.
func (a *Arena) Release(m ArenaMark) {
	a.foff, a.woff, a.ioff, a.hoff = m.f, m.w, m.i, m.h
	a.boff, a.i32off, a.f64off, a.qhoff = m.b, m.i32, m.f64, m.qh
}

// Reset frees everything, keeping capacity. Call between batches.
func (a *Arena) Reset() {
	a.foff, a.woff, a.ioff, a.hoff = 0, 0, 0, 0
	a.boff, a.i32off, a.f64off, a.qhoff = 0, 0, 0, 0
}

// Floats returns an uninitialized float32 buffer of length n.
func (a *Arena) Floats(n int) []float32 {
	if a.foff+n > len(a.floats) {
		if a.frozen {
			panic(fmt.Sprintf("tensor: frozen arena float slab exhausted (%d + %d > %d)", a.foff, n, len(a.floats)))
		}
		a.foff += n
		if a.foff > a.fpeak {
			a.fpeak = a.foff
		}
		return make([]float32, n)
	}
	s := a.floats[a.foff : a.foff+n : a.foff+n]
	a.foff += n
	if a.foff > a.fpeak {
		a.fpeak = a.foff
	}
	return s
}

// Words returns an uninitialized uint64 buffer of length n (packed queries).
func (a *Arena) Words(n int) []uint64 {
	if a.woff+n > len(a.words) {
		if a.frozen {
			panic(fmt.Sprintf("tensor: frozen arena word slab exhausted (%d + %d > %d)", a.woff, n, len(a.words)))
		}
		a.woff += n
		if a.woff > a.wpeak {
			a.wpeak = a.woff
		}
		return make([]uint64, n)
	}
	s := a.words[a.woff : a.woff+n : a.woff+n]
	a.woff += n
	if a.woff > a.wpeak {
		a.wpeak = a.woff
	}
	return s
}

// Bytes returns an uninitialized uint8 buffer of length n (quantized
// activations, im2col columns, packed int8 GEMM panels).
func (a *Arena) Bytes(n int) []uint8 {
	if a.boff+n > len(a.bytes) {
		if a.frozen {
			panic(fmt.Sprintf("tensor: frozen arena byte slab exhausted (%d + %d > %d)", a.boff, n, len(a.bytes)))
		}
		a.boff += n
		if a.boff > a.bpeak {
			a.bpeak = a.boff
		}
		return make([]uint8, n)
	}
	s := a.bytes[a.boff : a.boff+n : a.boff+n]
	a.boff += n
	if a.boff > a.bpeak {
		a.bpeak = a.boff
	}
	return s
}

// Int32s returns an uninitialized int32 buffer of length n (quantized GEMM
// accumulators).
func (a *Arena) Int32s(n int) []int32 {
	if a.i32off+n > len(a.i32s) {
		if a.frozen {
			panic(fmt.Sprintf("tensor: frozen arena int32 slab exhausted (%d + %d > %d)", a.i32off, n, len(a.i32s)))
		}
		a.i32off += n
		if a.i32off > a.i32peak {
			a.i32peak = a.i32off
		}
		return make([]int32, n)
	}
	s := a.i32s[a.i32off : a.i32off+n : a.i32off+n]
	a.i32off += n
	if a.i32off > a.i32peak {
		a.i32peak = a.i32off
	}
	return s
}

// Float64s returns an uninitialized float64 buffer of length n (blockwise
// similarity-score accumulators in the engine's fused tail).
func (a *Arena) Float64s(n int) []float64 {
	if a.f64off+n > len(a.f64s) {
		if a.frozen {
			panic(fmt.Sprintf("tensor: frozen arena float64 slab exhausted (%d + %d > %d)", a.f64off, n, len(a.f64s)))
		}
		a.f64off += n
		if a.f64off > a.f64peak {
			a.f64peak = a.f64off
		}
		return make([]float64, n)
	}
	s := a.f64s[a.f64off : a.f64off+n : a.f64off+n]
	a.f64off += n
	if a.f64off > a.f64peak {
		a.f64peak = a.f64off
	}
	return s
}

// header returns a tensor header with the given shape copied into the
// arena's shape slab.
func (a *Arena) header(shape []int) *Tensor {
	var t *Tensor
	if a.hoff < len(a.hdrs) {
		t = &a.hdrs[a.hoff]
	} else if a.frozen {
		panic("tensor: frozen arena header slab exhausted")
	} else {
		t = &Tensor{}
	}
	a.hoff++
	if a.hoff > a.hpeak {
		a.hpeak = a.hoff
	}

	var dst []int
	if a.ioff+len(shape) > len(a.ints) {
		if a.frozen {
			panic("tensor: frozen arena shape slab exhausted")
		}
		a.ioff += len(shape)
		if a.ioff > a.ipeak {
			a.ipeak = a.ioff
		}
		dst = make([]int, len(shape))
	} else {
		dst = a.ints[a.ioff : a.ioff+len(shape) : a.ioff+len(shape)]
		a.ioff += len(shape)
		if a.ioff > a.ipeak {
			a.ipeak = a.ioff
		}
	}
	copy(dst, shape)
	t.Shape = dst
	return t
}

// Alloc returns an arena-backed tensor of the given shape with
// UNINITIALIZED contents: the caller must overwrite every element.
//
// The panic messages below deliberately do not mention shape: passing the
// variadic slice to fmt would make it escape and cost one heap allocation
// per call even on the happy path.
func (a *Arena) Alloc(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic("tensor: negative dimension in arena Alloc")
		}
		n *= s
	}
	t := a.header(shape)
	t.Data = a.Floats(n)
	return t
}

// Wrap returns an arena-backed tensor header viewing existing data (no
// copy). The element count must match the shape, as in FromSlice.
func (a *Arena) Wrap(data []float32, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic("tensor: arena Wrap length does not match shape")
	}
	t := a.header(shape)
	t.Data = data
	return t
}

// qheader returns a QTensor header with the given shape copied into the
// arena's shape slab.
func (a *Arena) qheader(shape []int) *QTensor {
	var q *QTensor
	if a.qhoff < len(a.qhdrs) {
		q = &a.qhdrs[a.qhoff]
	} else if a.frozen {
		panic("tensor: frozen arena qheader slab exhausted")
	} else {
		q = &QTensor{}
	}
	a.qhoff++
	if a.qhoff > a.qhpeak {
		a.qhpeak = a.qhoff
	}

	var dst []int
	if a.ioff+len(shape) > len(a.ints) {
		if a.frozen {
			panic("tensor: frozen arena shape slab exhausted")
		}
		a.ioff += len(shape)
		if a.ioff > a.ipeak {
			a.ipeak = a.ioff
		}
		dst = make([]int, len(shape))
	} else {
		dst = a.ints[a.ioff : a.ioff+len(shape) : a.ioff+len(shape)]
		a.ioff += len(shape)
		if a.ioff > a.ipeak {
			a.ipeak = a.ioff
		}
	}
	copy(dst, shape)
	q.Shape = dst
	return q
}

// AllocU8 returns an arena-backed quantized tensor of the given shape with
// UNINITIALIZED contents: the caller must overwrite every element.
func (a *Arena) AllocU8(scale float32, zero uint8, shape ...int) *QTensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic("tensor: negative dimension in arena AllocU8")
		}
		n *= s
	}
	q := a.qheader(shape)
	q.Data = a.Bytes(n)
	q.Scale = scale
	q.Zero = zero
	return q
}

// WrapU8 returns an arena-backed quantized tensor header viewing existing
// bytes (no copy). The element count must match the shape.
func (a *Arena) WrapU8(data []uint8, scale float32, zero uint8, shape ...int) *QTensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic("tensor: arena WrapU8 length does not match shape")
	}
	q := a.qheader(shape)
	q.Data = data
	q.Scale = scale
	q.Zero = zero
	return q
}

// Freeze sizes the slabs to the observed peaks and switches the arena to
// frozen (zero-allocation) mode. The arena is Reset as a side effect.
func (a *Arena) Freeze() {
	a.floats = make([]float32, a.fpeak)
	a.words = make([]uint64, a.wpeak)
	a.ints = make([]int, a.ipeak)
	a.hdrs = make([]Tensor, a.hpeak)
	a.bytes = make([]uint8, a.bpeak)
	a.i32s = make([]int32, a.i32peak)
	a.f64s = make([]float64, a.f64peak)
	a.qhdrs = make([]QTensor, a.qhpeak)
	a.frozen = true
	a.Reset()
}

// Grow sizes the slabs to the observed peaks WITHOUT freezing: future
// allocations that fit are served from the slabs, while larger demands fall
// back to the heap and raise the recorded peaks (call Grow again to absorb
// them). This is the training-side mode — a Fit loop measures its first step,
// grows once, and every later step reuses the slabs allocation-free — whereas
// serving uses Freeze for a hard zero-allocation guarantee. The arena is
// Reset as a side effect; outstanding buffers must no longer be in use.
func (a *Arena) Grow() {
	if a.frozen {
		panic("tensor: Grow of frozen arena")
	}
	if a.fpeak > len(a.floats) {
		a.floats = make([]float32, a.fpeak)
	}
	if a.wpeak > len(a.words) {
		a.words = make([]uint64, a.wpeak)
	}
	if a.ipeak > len(a.ints) {
		a.ints = make([]int, a.ipeak)
	}
	if a.hpeak > len(a.hdrs) {
		a.hdrs = make([]Tensor, a.hpeak)
	}
	if a.bpeak > len(a.bytes) {
		a.bytes = make([]uint8, a.bpeak)
	}
	if a.i32peak > len(a.i32s) {
		a.i32s = make([]int32, a.i32peak)
	}
	if a.f64peak > len(a.f64s) {
		a.f64s = make([]float64, a.f64peak)
	}
	if a.qhpeak > len(a.qhdrs) {
		a.qhdrs = make([]QTensor, a.qhpeak)
	}
	a.Reset()
}

// CloneEmpty returns a fresh frozen arena with the same slab capacities.
// Only valid on a frozen arena; used to stamp out one arena per worker after
// a single measuring warmup.
func (a *Arena) CloneEmpty() *Arena {
	if !a.frozen {
		panic("tensor: CloneEmpty of unfrozen arena")
	}
	c := &Arena{
		frozen: true,
		floats: make([]float32, len(a.floats)),
		words:  make([]uint64, len(a.words)),
		ints:   make([]int, len(a.ints)),
		hdrs:   make([]Tensor, len(a.hdrs)),
		bytes:  make([]uint8, len(a.bytes)),
		i32s:   make([]int32, len(a.i32s)),
		f64s:   make([]float64, len(a.f64s)),
		qhdrs:  make([]QTensor, len(a.qhdrs)),
		fpeak:  a.fpeak, wpeak: a.wpeak, ipeak: a.ipeak, hpeak: a.hpeak,
		bpeak: a.bpeak, i32peak: a.i32peak, f64peak: a.f64peak, qhpeak: a.qhpeak,
	}
	return c
}

// FootprintBytes reports the frozen arena's slab memory (rough, for logs and
// chunk-size budgeting).
func (a *Arena) FootprintBytes() int64 {
	return int64(a.fpeak)*4 + int64(a.wpeak)*8 + int64(a.ipeak)*8 + int64(a.hpeak)*48 +
		int64(a.bpeak) + int64(a.i32peak)*4 + int64(a.f64peak)*8 + int64(a.qhpeak)*56
}

// PeakFloats reports the peak float32 usage observed so far (valid in both
// modes); the engine uses it to budget its chunk size.
func (a *Arena) PeakFloats() int { return a.fpeak }
