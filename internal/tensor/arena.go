package tensor

import "fmt"

// Arena is a region (bump) allocator backing the serving engine's
// allocation-free forward pass. Activations, scratch buffers, packed-query
// words and tensor headers are all carved out of preallocated slabs; a
// steady-state inference batch therefore performs zero heap allocations.
//
// An arena has two modes:
//
//   - measuring (fresh from NewArena): every allocation is satisfied with a
//     plain make() while high-water marks record the peak simultaneous usage
//     of each slab. The engine compiles by running one warmup batch through
//     a measuring arena.
//   - frozen (after Freeze): the slabs are sized to the recorded peaks and
//     allocations bump offsets into them. Exceeding a frozen slab panics —
//     it means the warmup did not cover the steady-state shape, which is an
//     engine sizing bug, not a runtime condition.
//
// Mark/Release give stack discipline for transient scratch (e.g. an im2col
// matrix that dies with its layer) while activations allocated before the
// mark survive. Reset recycles the whole arena between batches.
//
// Returned buffers are NOT zeroed: every serving kernel fully overwrites its
// output, and skipping the clear saves a memory pass per layer.
//
// An Arena is owned by one goroutine at a time; the engine keeps one arena
// per concurrent worker.
type Arena struct {
	frozen bool

	floats []float32
	foff   int
	fpeak  int

	words []uint64
	woff  int
	wpeak int

	ints  []int
	ioff  int
	ipeak int

	hdrs  []Tensor
	hoff  int
	hpeak int
}

// NewArena returns an empty arena in measuring mode.
func NewArena() *Arena { return &Arena{} }

// ArenaMark is a snapshot of all slab offsets, for stack-style release.
type ArenaMark struct{ f, w, i, h int }

// Mark snapshots the arena's current offsets.
func (a *Arena) Mark() ArenaMark {
	return ArenaMark{f: a.foff, w: a.woff, i: a.ioff, h: a.hoff}
}

// Release rewinds the arena to a previous Mark, freeing everything allocated
// since. Buffers handed out after the mark must no longer be used.
func (a *Arena) Release(m ArenaMark) {
	a.foff, a.woff, a.ioff, a.hoff = m.f, m.w, m.i, m.h
}

// Reset frees everything, keeping capacity. Call between batches.
func (a *Arena) Reset() { a.foff, a.woff, a.ioff, a.hoff = 0, 0, 0, 0 }

// Floats returns an uninitialized float32 buffer of length n.
func (a *Arena) Floats(n int) []float32 {
	if a.foff+n > len(a.floats) {
		if a.frozen {
			panic(fmt.Sprintf("tensor: frozen arena float slab exhausted (%d + %d > %d)", a.foff, n, len(a.floats)))
		}
		a.foff += n
		if a.foff > a.fpeak {
			a.fpeak = a.foff
		}
		return make([]float32, n)
	}
	s := a.floats[a.foff : a.foff+n : a.foff+n]
	a.foff += n
	if a.foff > a.fpeak {
		a.fpeak = a.foff
	}
	return s
}

// Words returns an uninitialized uint64 buffer of length n (packed queries).
func (a *Arena) Words(n int) []uint64 {
	if a.woff+n > len(a.words) {
		if a.frozen {
			panic(fmt.Sprintf("tensor: frozen arena word slab exhausted (%d + %d > %d)", a.woff, n, len(a.words)))
		}
		a.woff += n
		if a.woff > a.wpeak {
			a.wpeak = a.woff
		}
		return make([]uint64, n)
	}
	s := a.words[a.woff : a.woff+n : a.woff+n]
	a.woff += n
	if a.woff > a.wpeak {
		a.wpeak = a.woff
	}
	return s
}

// header returns a tensor header with the given shape copied into the
// arena's shape slab.
func (a *Arena) header(shape []int) *Tensor {
	var t *Tensor
	if a.hoff < len(a.hdrs) {
		t = &a.hdrs[a.hoff]
	} else if a.frozen {
		panic("tensor: frozen arena header slab exhausted")
	} else {
		t = &Tensor{}
	}
	a.hoff++
	if a.hoff > a.hpeak {
		a.hpeak = a.hoff
	}

	var dst []int
	if a.ioff+len(shape) > len(a.ints) {
		if a.frozen {
			panic("tensor: frozen arena shape slab exhausted")
		}
		a.ioff += len(shape)
		if a.ioff > a.ipeak {
			a.ipeak = a.ioff
		}
		dst = make([]int, len(shape))
	} else {
		dst = a.ints[a.ioff : a.ioff+len(shape) : a.ioff+len(shape)]
		a.ioff += len(shape)
		if a.ioff > a.ipeak {
			a.ipeak = a.ioff
		}
	}
	copy(dst, shape)
	t.Shape = dst
	return t
}

// Alloc returns an arena-backed tensor of the given shape with
// UNINITIALIZED contents: the caller must overwrite every element.
//
// The panic messages below deliberately do not mention shape: passing the
// variadic slice to fmt would make it escape and cost one heap allocation
// per call even on the happy path.
func (a *Arena) Alloc(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic("tensor: negative dimension in arena Alloc")
		}
		n *= s
	}
	t := a.header(shape)
	t.Data = a.Floats(n)
	return t
}

// Wrap returns an arena-backed tensor header viewing existing data (no
// copy). The element count must match the shape, as in FromSlice.
func (a *Arena) Wrap(data []float32, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic("tensor: arena Wrap length does not match shape")
	}
	t := a.header(shape)
	t.Data = data
	return t
}

// Freeze sizes the slabs to the observed peaks and switches the arena to
// frozen (zero-allocation) mode. The arena is Reset as a side effect.
func (a *Arena) Freeze() {
	a.floats = make([]float32, a.fpeak)
	a.words = make([]uint64, a.wpeak)
	a.ints = make([]int, a.ipeak)
	a.hdrs = make([]Tensor, a.hpeak)
	a.frozen = true
	a.Reset()
}

// Grow sizes the slabs to the observed peaks WITHOUT freezing: future
// allocations that fit are served from the slabs, while larger demands fall
// back to the heap and raise the recorded peaks (call Grow again to absorb
// them). This is the training-side mode — a Fit loop measures its first step,
// grows once, and every later step reuses the slabs allocation-free — whereas
// serving uses Freeze for a hard zero-allocation guarantee. The arena is
// Reset as a side effect; outstanding buffers must no longer be in use.
func (a *Arena) Grow() {
	if a.frozen {
		panic("tensor: Grow of frozen arena")
	}
	if a.fpeak > len(a.floats) {
		a.floats = make([]float32, a.fpeak)
	}
	if a.wpeak > len(a.words) {
		a.words = make([]uint64, a.wpeak)
	}
	if a.ipeak > len(a.ints) {
		a.ints = make([]int, a.ipeak)
	}
	if a.hpeak > len(a.hdrs) {
		a.hdrs = make([]Tensor, a.hpeak)
	}
	a.Reset()
}

// CloneEmpty returns a fresh frozen arena with the same slab capacities.
// Only valid on a frozen arena; used to stamp out one arena per worker after
// a single measuring warmup.
func (a *Arena) CloneEmpty() *Arena {
	if !a.frozen {
		panic("tensor: CloneEmpty of unfrozen arena")
	}
	c := &Arena{
		frozen: true,
		floats: make([]float32, len(a.floats)),
		words:  make([]uint64, len(a.words)),
		ints:   make([]int, len(a.ints)),
		hdrs:   make([]Tensor, len(a.hdrs)),
		fpeak:  a.fpeak, wpeak: a.wpeak, ipeak: a.ipeak, hpeak: a.hpeak,
	}
	return c
}

// FootprintBytes reports the frozen arena's slab memory (rough, for logs and
// chunk-size budgeting).
func (a *Arena) FootprintBytes() int64 {
	return int64(a.fpeak)*4 + int64(a.wpeak)*8 + int64(a.ipeak)*8 + int64(a.hpeak)*48
}

// PeakFloats reports the peak float32 usage observed so far (valid in both
// modes); the engine uses it to budget its chunk size.
func (a *Arena) PeakFloats() int { return a.fpeak }
