#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemm4x16(kc int, a0, a1, a2, a3, bp, o0, o1, o2, o3 *float32)
//
// 4x16 register-tiled micro-kernel: 8 YMM accumulators hold the output tile
// across the whole K loop, so the only memory traffic per K step is one
// 64-byte packed-B read plus four 4-byte A broadcasts, and each step retires
// 8 fused multiply-adds (64 flops). Accumulators are added into the output
// rows once at the end.
TEXT ·gemm4x16(SB), NOSPLIT, $0-80
	MOVQ kc+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ bp+40(FP), SI
	MOVQ o0+48(FP), DI
	MOVQ o1+56(FP), DX
	MOVQ o2+64(FP), R12
	MOVQ o3+72(FP), R13

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

kloop:
	VMOVUPS (SI), Y8
	VMOVUPS 32(SI), Y9
	VBROADCASTSS (R8), Y10
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	VBROADCASTSS (R9), Y11
	VFMADD231PS Y8, Y11, Y2
	VFMADD231PS Y9, Y11, Y3
	VBROADCASTSS (R10), Y10
	VFMADD231PS Y8, Y10, Y4
	VFMADD231PS Y9, Y10, Y5
	VBROADCASTSS (R11), Y11
	VFMADD231PS Y8, Y11, Y6
	VFMADD231PS Y9, Y11, Y7
	ADDQ $64, SI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JNE  kloop

	VADDPS (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	VADDPS 32(DI), Y1, Y1
	VMOVUPS Y1, 32(DI)
	VADDPS (DX), Y2, Y2
	VMOVUPS Y2, (DX)
	VADDPS 32(DX), Y3, Y3
	VMOVUPS Y3, 32(DX)
	VADDPS (R12), Y4, Y4
	VMOVUPS Y4, (R12)
	VADDPS 32(R12), Y5, Y5
	VMOVUPS Y5, 32(R12)
	VADDPS (R13), Y6, Y6
	VMOVUPS Y6, (R13)
	VADDPS 32(R13), Y7, Y7
	VMOVUPS Y7, 32(R13)
	VZEROUPPER
	RET

// func gemm1x16s(kc, ns int, a, bp, o *float32)
//
// Skinny-M micro-kernel: one output row across ns consecutive 16-wide packed
// strips. Each strip holds a 2-YMM accumulator pair across its whole K loop
// (one broadcast + two fused multiply-adds per K step), added into the output
// once at the end — the same single-accumulator, p-ascending order gemm4x16
// gives each of its rows, so a leftover row computes bit-identically to the
// rows of a full 4-row group. Strips are contiguous (strip s starts at
// bp + s·kc·16), so SI streams straight through the panel.
TEXT ·gemm1x16s(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), BX
	MOVQ ns+8(FP), DX
	MOVQ a+16(FP), R9
	MOVQ bp+24(FP), SI
	MOVQ o+32(FP), DI

sloop:
	MOVQ R9, R8
	MOVQ BX, CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

kloop:
	VBROADCASTSS (R8), Y2
	VMOVUPS (SI), Y3
	VFMADD231PS Y3, Y2, Y0
	VMOVUPS 32(SI), Y4
	VFMADD231PS Y4, Y2, Y1
	ADDQ $64, SI
	ADDQ $4, R8
	DECQ CX
	JNE  kloop

	VADDPS (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	VADDPS 32(DI), Y1, Y1
	VMOVUPS Y1, 32(DI)
	ADDQ $64, DI
	DECQ DX
	JNE  sloop
	VZEROUPPER
	RET

// func dot8(n int, x, y *float32) float32
//
// Inner product over n elements (n a positive multiple of 8), using four
// independent YMM accumulators to hide FMA latency, then a horizontal sum.
// The accumulation order is fixed, so results are deterministic call-to-call.
TEXT ·dot8(SB), NOSPLIT, $0-28
	MOVQ n+0(FP), CX
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

	MOVQ CX, BX
	ANDQ $-32, BX
	JEQ  tail8

loop32:
	VMOVUPS (SI), Y4
	VFMADD231PS (DI), Y4, Y0
	VMOVUPS 32(SI), Y5
	VFMADD231PS 32(DI), Y5, Y1
	VMOVUPS 64(SI), Y6
	VFMADD231PS 64(DI), Y6, Y2
	VMOVUPS 96(SI), Y7
	VFMADD231PS 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $32, BX
	JNE  loop32

tail8:
	ANDQ $24, CX
	JEQ  reduce

loop8:
	VMOVUPS (SI), Y4
	VFMADD231PS (DI), Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JNE  loop8

reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func reluAsm(n int, p *float32)
//
// In-place ReLU over n floats (n a positive multiple of 8). Uses a compare
// mask rather than VMAXPS so the result is bit-identical to Go's
// `if v <= 0 { v = 0 }` on every input: predicate 6 (NLE_US) is true for
// v > 0 and for NaN, so NaN payloads pass through and -0 becomes +0 exactly
// like the scalar comparison.
TEXT ·reluAsm(SB), NOSPLIT, $0-16
	MOVQ n+0(FP), CX
	MOVQ p+8(FP), SI
	VXORPS Y0, Y0, Y0

	MOVQ CX, BX
	ANDQ $-32, BX
	JEQ  tail8

loop32:
	VMOVUPS (SI), Y1
	VCMPPS  $6, Y0, Y1, Y2
	VANDPS  Y2, Y1, Y1
	VMOVUPS Y1, (SI)
	VMOVUPS 32(SI), Y3
	VCMPPS  $6, Y0, Y3, Y4
	VANDPS  Y4, Y3, Y3
	VMOVUPS Y3, 32(SI)
	VMOVUPS 64(SI), Y1
	VCMPPS  $6, Y0, Y1, Y2
	VANDPS  Y2, Y1, Y1
	VMOVUPS Y1, 64(SI)
	VMOVUPS 96(SI), Y3
	VCMPPS  $6, Y0, Y3, Y4
	VANDPS  Y4, Y3, Y3
	VMOVUPS Y3, 96(SI)
	ADDQ    $128, SI
	SUBQ    $32, BX
	JNE     loop32

tail8:
	ANDQ $24, CX
	JEQ  done

loop8:
	VMOVUPS (SI), Y1
	VCMPPS  $6, Y0, Y1, Y2
	VANDPS  Y2, Y1, Y1
	VMOVUPS Y1, (SI)
	ADDQ    $32, SI
	SUBQ    $8, CX
	JNE     loop8

done:
	VZEROUPPER
	RET

// func addScalarReluAsm(n int, p *float32, b float32)
//
// In-place p[i] = max(p[i]+b, 0) over n floats (n a positive multiple of 8):
// the bias-add epilogue and the ReLU clamp in one sweep. The clamp reuses
// reluAsm's compare-mask construction (predicate 6, NLE_US) so the result is
// bit-identical to the scalar `v += b; if v <= 0 { v = 0 }` — the VADDPS sum
// is the IEEE sum the scalar add produces, NaN sums pass through, and a -0
// sum becomes +0.
TEXT ·addScalarReluAsm(SB), NOSPLIT, $0-20
	MOVQ n+0(FP), CX
	MOVQ p+8(FP), SI
	VBROADCASTSS b+16(FP), Y5
	VXORPS Y0, Y0, Y0

	MOVQ CX, BX
	ANDQ $-32, BX
	JEQ  artail8

arloop32:
	VMOVUPS (SI), Y1
	VADDPS  Y5, Y1, Y1
	VCMPPS  $6, Y0, Y1, Y2
	VANDPS  Y2, Y1, Y1
	VMOVUPS Y1, (SI)
	VMOVUPS 32(SI), Y3
	VADDPS  Y5, Y3, Y3
	VCMPPS  $6, Y0, Y3, Y4
	VANDPS  Y4, Y3, Y3
	VMOVUPS Y3, 32(SI)
	VMOVUPS 64(SI), Y1
	VADDPS  Y5, Y1, Y1
	VCMPPS  $6, Y0, Y1, Y2
	VANDPS  Y2, Y1, Y1
	VMOVUPS Y1, 64(SI)
	VMOVUPS 96(SI), Y3
	VADDPS  Y5, Y3, Y3
	VCMPPS  $6, Y0, Y3, Y4
	VANDPS  Y4, Y3, Y3
	VMOVUPS Y3, 96(SI)
	ADDQ    $128, SI
	SUBQ    $32, BX
	JNE     arloop32

artail8:
	ANDQ $24, CX
	JEQ  ardone

arloop8:
	VMOVUPS (SI), Y1
	VADDPS  Y5, Y1, Y1
	VCMPPS  $6, Y0, Y1, Y2
	VANDPS  Y2, Y1, Y1
	VMOVUPS Y1, (SI)
	ADDQ    $32, SI
	SUBQ    $8, CX
	JNE     arloop8

ardone:
	VZEROUPPER
	RET

// func packSignsAsm(nwords int, src *float32, dst *uint64)
//
// Per output word: 8 groups of 8 floats, each compared against zero with
// VCMPPS (LT_OS, matching Go's `v < 0` on -0 and NaN) and collapsed to 8
// mask bits with VMOVMSKPS.
TEXT ·packSignsAsm(SB), NOSPLIT, $0-24
	MOVQ nwords+0(FP), CX
	MOVQ src+8(FP), SI
	MOVQ dst+16(FP), DI
	VXORPS Y0, Y0, Y0

wloop:
	VMOVUPS (SI), Y1
	VCMPPS $1, Y0, Y1, Y1
	VMOVMSKPS Y1, AX
	VMOVUPS 32(SI), Y2
	VCMPPS $1, Y0, Y2, Y2
	VMOVMSKPS Y2, BX
	SHLQ $8, BX
	ORQ  BX, AX
	VMOVUPS 64(SI), Y3
	VCMPPS $1, Y0, Y3, Y3
	VMOVMSKPS Y3, BX
	SHLQ $16, BX
	ORQ  BX, AX
	VMOVUPS 96(SI), Y1
	VCMPPS $1, Y0, Y1, Y1
	VMOVMSKPS Y1, BX
	SHLQ $24, BX
	ORQ  BX, AX
	VMOVUPS 128(SI), Y2
	VCMPPS $1, Y0, Y2, Y2
	VMOVMSKPS Y2, BX
	SHLQ $32, BX
	ORQ  BX, AX
	VMOVUPS 160(SI), Y3
	VCMPPS $1, Y0, Y3, Y3
	VMOVMSKPS Y3, BX
	SHLQ $40, BX
	ORQ  BX, AX
	VMOVUPS 192(SI), Y1
	VCMPPS $1, Y0, Y1, Y1
	VMOVMSKPS Y1, BX
	SHLQ $48, BX
	ORQ  BX, AX
	VMOVUPS 224(SI), Y2
	VCMPPS $1, Y0, Y2, Y2
	VMOVMSKPS Y2, BX
	SHLQ $56, BX
	ORQ  BX, AX
	MOVQ AX, (DI)
	ADDQ $256, SI
	ADDQ $8, DI
	DECQ CX
	JNE  wloop
	VZEROUPPER
	RET
