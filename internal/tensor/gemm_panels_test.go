package tensor

import (
	"fmt"
	"testing"
)

// TestBipolarGenTileConsistency: every access path — full fill, arbitrary
// tiles, strip fill, single elements — reproduces the same matrix, and the
// matrix is ±1-valued and seed-deterministic.
func TestBipolarGenTileConsistency(t *testing.T) {
	g := NewBipolarGen(42, 37, 133)
	full := New(37, 133)
	g.FillInto(full)
	for _, v := range full.Data {
		if v != 1 && v != -1 {
			t.Fatalf("non-bipolar value %v", v)
		}
	}
	g2 := NewBipolarGen(42, 37, 133)
	full2 := New(37, 133)
	g2.FillInto(full2)
	for i := range full.Data {
		if full.Data[i] != full2.Data[i] {
			t.Fatalf("same seed produced different matrices at %d", i)
		}
	}
	g3 := NewBipolarGen(43, 37, 133)
	full3 := New(37, 133)
	g3.FillInto(full3)
	same := 0
	for i := range full.Data {
		if full.Data[i] == full3.Data[i] {
			same++
		}
	}
	if same == len(full.Data) {
		t.Fatal("different seeds produced identical matrices")
	}

	// Awkward unaligned tile.
	r0, r1, c0, c1 := 3, 29, 17, 130
	ld := c1 - c0
	tile := make([]float32, (r1-r0)*ld)
	g.FillTile(tile, ld, r0, r1, c0, c1)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			if tile[(r-r0)*ld+(c-c0)] != full.Data[r*133+c] {
				t.Fatalf("tile mismatch at (%d,%d)", r, c)
			}
		}
	}
	if g.at(5, 77) != full.Data[5*133+77] {
		t.Fatal("element access disagrees with full fill")
	}

	// Strip fill reproduces packPanel16 of the materialized matrix.
	pb, pe, jb, je := 4, 33, 16, 128
	kc := pe - pb
	want := make([]float32, kc*(je-jb))
	packPanel16(want, full.Data, 133, pb, pe, jb, je)
	got := make([]float32, kc*(je-jb))
	g.fillStrips(got, pb, pe, jb, je)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("strip mismatch at %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestBipolarGenBalance sanity-checks the sign distribution: a grossly
// biased generator would break the quasi-orthogonality the projection
// relies on.
func TestBipolarGenBalance(t *testing.T) {
	g := NewBipolarGen(7, 100, 1000)
	m := New(100, 1000)
	g.FillInto(m)
	pos := 0
	for _, v := range m.Data {
		if v > 0 {
			pos++
		}
	}
	frac := float64(pos) / float64(len(m.Data))
	if frac < 0.49 || frac > 0.51 {
		t.Fatalf("sign fraction %v, want ~0.5", frac)
	}
}

// panelShapes are deliberately awkward: K and N off the 256 blocks, N off
// the 16-wide strips, single rows, empty batches.
var panelShapes = []struct{ m, k, n int }{
	{8, 16, 70},     // tiny everything, ragged N
	{1, 100, 3000},  // single sample, paper shapes
	{0, 100, 256},   // empty batch
	{5, 257, 300},   // K spans two K-blocks with remainder
	{7, 64, 256},    // exactly one NC block
	{3, 33, 257},    // one column past the NC block
	{6, 512, 1000},  // multiple K blocks, ragged N
	{4, 10, 16},     // exactly one strip
	{9, 20, 15},     // below one strip: pure Go tail
	{2, 300, 530},   // three NC blocks, ragged tail
}

// TestMatMulPanelsMatchesSerial pins the bit-exactness contract: prepacked
// and rematerialized panel products equal MatMulSerialInto on the
// materialized matrix, element for element, for both the full-width and the
// per-block entry points.
func TestMatMulPanelsMatchesSerial(t *testing.T) {
	scratch := make([]float32, GemmScratch())
	pscratch := make([]float32, PanelScratch())
	for _, s := range panelShapes {
		gen := NewBipolarGen(int64(s.m*1000+s.n), s.k, s.n)
		b := New(s.k, s.n)
		gen.FillInto(b)
		a := New(s.m, s.k)
		NewRNG(int64(s.k)).FillNormal(a, 0, 1)

		want := New(s.m, s.n)
		MatMulSerialInto(want, a, b, scratch)

		for name, pp := range map[string]*ProjPanels{
			"prepack": PrepackPanels(b),
			"remat":   RematPanels(gen),
		} {
			got := New(s.m, s.n)
			MatMulPanelsInto(got, a, pp, pscratch)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s m=%d k=%d n=%d: full product differs at %d: got %v want %v",
						name, s.m, s.k, s.n, i, got.Data[i], want.Data[i])
				}
			}
			for c0 := 0; c0 < s.n; c0 += PanelBlockCols() {
				blk := make([]float32, s.m*PanelBlockCols())
				w := MatMulPanelsBlock(blk, a, pp, c0, pscratch)
				for i := 0; i < s.m; i++ {
					for j := 0; j < w; j++ {
						if blk[i*w+j] != want.Data[i*s.n+c0+j] {
							t.Fatalf("%s m=%d k=%d n=%d: block c0=%d differs at (%d,%d)",
								name, s.m, s.k, s.n, c0, i, j)
						}
					}
				}
			}
		}
	}
}

// TestPrepackPanelsAgainstRemat: packing a stored matrix and wrapping its
// generator describe the same operator.
func TestPrepackPanelsAgainstRemat(t *testing.T) {
	gen := NewBipolarGen(99, 100, 530)
	b := New(100, 530)
	gen.FillInto(b)
	a := New(6, 100)
	NewRNG(5).FillNormal(a, 0, 1)
	scratch := make([]float32, PanelScratch())
	x := New(6, 530)
	y := New(6, 530)
	MatMulPanelsInto(x, a, PrepackPanels(b), scratch)
	MatMulPanelsInto(y, a, RematPanels(gen), scratch)
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			t.Fatalf("prepack vs remat differ at %d", i)
		}
	}
}

// TestProjPanelsMemoryBytes: rematerialized panels cost a seed; prepacked
// panels cost the matrix.
func TestProjPanelsMemoryBytes(t *testing.T) {
	gen := NewBipolarGen(1, 100, 3000)
	if got := RematPanels(gen).MemoryBytes(); got != 8 {
		t.Fatalf("remat panels report %d bytes, want 8", got)
	}
	b := New(100, 3000)
	gen.FillInto(b)
	if got := PrepackPanels(b).MemoryBytes(); got != 100*3000*4 {
		t.Fatalf("prepacked panels report %d bytes, want %d", got, 100*3000*4)
	}
}

func BenchmarkPanelGEMM(b *testing.B) {
	const k, n = 100, 3000
	gen := NewBipolarGen(3, k, n)
	mat := New(k, n)
	gen.FillInto(mat)
	scratch := make([]float32, GemmScratch())
	pscratch := make([]float32, PanelScratch())
	for _, m := range []int{1, 64} {
		a := New(m, k)
		NewRNG(9).FillNormal(a, 0, 1)
		out := New(m, n)
		b.Run(benchName("stored", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMulSerialInto(out, a, mat, scratch)
			}
		})
		pp := PrepackPanels(mat)
		b.Run(benchName("prepack", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMulPanelsInto(out, a, pp, pscratch)
			}
		})
		rp := RematPanels(gen)
		b.Run(benchName("remat", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMulPanelsInto(out, a, rp, pscratch)
			}
		})
	}
}

func benchName(kind string, m int) string {
	return fmt.Sprintf("%s/batch%d", kind, m)
}
