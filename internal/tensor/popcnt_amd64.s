#include "textflag.h"

// Vectorized XOR-popcount over uint64 words: the Hamming kernel behind
// PackedModel scoring and the ternary scorer. Both routines use the classic
// VPSHUFB nibble-LUT: split each byte of the combined word into two nibbles,
// look each up in a 16-entry popcount table, add the per-byte counts, and
// collapse 32 bytes to four qword sums with VPSADBW against zero. Per-byte
// counts peak at 8 and VPSADBW runs every iteration, so no overflow is
// possible at any length; the qword accumulator is exact.

// 16-entry nibble popcount table, replicated across both 128-bit lanes.
DATA popcntLUT<>+0(SB)/8, $0x0302020102010100
DATA popcntLUT<>+8(SB)/8, $0x0403030203020201
DATA popcntLUT<>+16(SB)/8, $0x0302020102010100
DATA popcntLUT<>+24(SB)/8, $0x0403030203020201
GLOBL popcntLUT<>(SB), RODATA|NOPTR, $32

DATA popcntNib<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA popcntNib<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA popcntNib<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA popcntNib<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL popcntNib<>(SB), RODATA|NOPTR, $32

// func xorPopcntAsm(groups int, a, b *uint64) int64
//
// Returns Σ OnesCount64(a[w] ^ b[w]) over the first 4·groups words (one
// 32-byte YMM load per operand per group). groups must be ≥ 1.
TEXT ·xorPopcntAsm(SB), NOSPLIT, $0-32
	MOVQ groups+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI

	VMOVDQU popcntLUT<>(SB), Y14
	VMOVDQU popcntNib<>(SB), Y15
	VPXOR   Y0, Y0, Y0
	VPXOR   Y13, Y13, Y13

gloop:
	VMOVDQU (SI), Y1
	VMOVDQU (DI), Y2
	VPXOR   Y2, Y1, Y1
	VPAND   Y15, Y1, Y2
	VPSHUFB Y2, Y14, Y2
	VPSRLW  $4, Y1, Y3
	VPAND   Y15, Y3, Y3
	VPSHUFB Y3, Y14, Y3
	VPADDB  Y3, Y2, Y2
	VPSADBW Y13, Y2, Y2
	VPADDQ  Y2, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNE     gloop

	VEXTRACTI128 $1, Y0, X1
	VPADDQ       X1, X0, X0
	VPSHUFD      $0x4e, X0, X1
	VPADDQ       X1, X0, X0
	VZEROUPPER
	MOVQ         X0, AX
	MOVQ         AX, ret+24(FP)
	RET

// func xorMaskPopcntAsm(groups int, q, sgn, msk *uint64) int64
//
// Returns Σ OnesCount64((q[w] ^ sgn[w]) & msk[w]) over the first 4·groups
// words — the ternary scorer's masked Hamming inner loop. groups must be ≥ 1.
TEXT ·xorMaskPopcntAsm(SB), NOSPLIT, $0-40
	MOVQ groups+0(FP), CX
	MOVQ q+8(FP), SI
	MOVQ sgn+16(FP), DI
	MOVQ msk+24(FP), R8

	VMOVDQU popcntLUT<>(SB), Y14
	VMOVDQU popcntNib<>(SB), Y15
	VPXOR   Y0, Y0, Y0
	VPXOR   Y13, Y13, Y13

gloop:
	VMOVDQU (SI), Y1
	VMOVDQU (DI), Y2
	VPXOR   Y2, Y1, Y1
	VPAND   (R8), Y1, Y1
	VPAND   Y15, Y1, Y2
	VPSHUFB Y2, Y14, Y2
	VPSRLW  $4, Y1, Y3
	VPAND   Y15, Y3, Y3
	VPSHUFB Y3, Y14, Y3
	VPADDB  Y3, Y2, Y2
	VPSADBW Y13, Y2, Y2
	VPADDQ  Y2, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, R8
	DECQ    CX
	JNE     gloop

	VEXTRACTI128 $1, Y0, X1
	VPADDQ       X1, X0, X0
	VPSHUFD      $0x4e, X0, X1
	VPADDQ       X1, X0, X0
	VZEROUPPER
	MOVQ         X0, AX
	MOVQ         AX, ret+32(FP)
	RET
