package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestReLUInPlaceMatchesScalar pins the vector kernel bit-identical to the
// scalar `if v <= 0 { v = 0 }` sweep, including NaN passthrough, -0 → +0,
// and every tail length around the 8- and 32-wide unroll boundaries.
func TestReLUInPlaceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	specials := []float32{0, float32(math.Copysign(0, -1)), float32(math.NaN()),
		float32(math.Inf(1)), float32(math.Inf(-1)), -1e-45, 1e-45}
	for n := 0; n <= 70; n++ {
		x := make([]float32, n)
		for i := range x {
			if rng.Intn(4) == 0 {
				x[i] = specials[rng.Intn(len(specials))]
			} else {
				x[i] = rng.Float32()*2 - 1
			}
		}
		want := make([]float32, n)
		for i, v := range x {
			if v <= 0 {
				want[i] = 0
			} else {
				want[i] = v
			}
		}
		got := make([]float32, n)
		copy(got, x)
		ReLUInPlace(got)
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("n=%d: ReLUInPlace[%d] = %x, want %x (input %v)",
					n, i, math.Float32bits(got[i]), math.Float32bits(want[i]), x[i])
			}
		}
	}
}

// TestAddScalarReLUInPlaceMatchesScalar pins the fused bias+ReLU sweep
// bit-identical to the two separate passes (`v += b` then the `v <= 0`
// clamp) over the same special values and unroll-boundary tail lengths,
// across a spread of biases including NaN and infinities.
func TestAddScalarReLUInPlaceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	specials := []float32{0, float32(math.Copysign(0, -1)), float32(math.NaN()),
		float32(math.Inf(1)), float32(math.Inf(-1)), -1e-45, 1e-45}
	biases := []float32{0, 0.25, -0.25, float32(math.Copysign(0, -1)),
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1))}
	for n := 0; n <= 70; n++ {
		for _, b := range biases {
			x := make([]float32, n)
			for i := range x {
				if rng.Intn(4) == 0 {
					x[i] = specials[rng.Intn(len(specials))]
				} else {
					x[i] = rng.Float32()*2 - 1
				}
			}
			want := make([]float32, n)
			for i, v := range x {
				y := v + b
				if y <= 0 {
					y = 0
				}
				want[i] = y
			}
			got := make([]float32, n)
			copy(got, x)
			AddScalarReLUInPlace(got, b)
			for i := range want {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("n=%d b=%v: AddScalarReLUInPlace[%d] = %x, want %x (input %v)",
						n, b, i, math.Float32bits(got[i]), math.Float32bits(want[i]), x[i])
				}
			}
		}
	}
}
