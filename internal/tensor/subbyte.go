package tensor

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Sub-8-bit scoring kernels: the compressed serving engine's classifier
// arithmetic. Both kernels score a BIPOLAR query (±1 per dimension) that the
// fused tail has already sign-packed into uint64 words (bit set = −1, tail
// bits of the last word zero = +1, matching PackSignsInto) against a class
// row stored below int8:
//
//   - int4: weights w ∈ [−7, 7] packed two nibbles per byte in offset-binary
//     (stored nibble = w+8). The dot Σ_d sign_d·w_d runs "unpacked in
//     register": the Go kernel is a SWAR loop that masks the selected
//     (negative-sign) nibbles of eight packed bytes at a time inside one
//     uint64 and horizontal-adds them with a multiply, never materializing
//     int8 values; the amd64 kernel expands the query word into ±1 byte
//     masks with shuffles and sign-flips 64 weights per 32-byte load. Both
//     are exact integer arithmetic, so they agree bit-for-bit with the naive
//     nibble-decode reference (TestInt4SignDot*).
//
//   - ternary {−1, 0, +1}: sign words + zero-mask words, scored as
//     nnz − 2·popcount((q ⊕ sign) & mask) — the PR 1 packed popcount path
//     extended with a per-row sparsity mask.
//
// Per-row float32 scales (chosen by internal/quant) turn the integer dots
// back into comparable class scores; the kernels themselves stay integer.

// Int4 pack layout: dimensions are grouped 64 per query word; each group
// occupies 32 bytes. Byte i of group g holds dimension g·64+i in its LOW
// nibble and dimension g·64+32+i in its HIGH nibble (plane-separated, so the
// amd64 kernel's lo/hi nibble vectors line up with contiguous query bits).
// Nibbles are offset-binary (value+8); padding dimensions ≥ d encode 8
// (value 0), so they contribute nothing regardless of the query's tail bits.

// Int4BytesPerWord is the packed row bytes covering one 64-dimension query
// word.
const Int4BytesPerWord = 32

// Int4Pack packs vals (int4 range [−7, 7], length d) into the kernel layout.
// dst must hold ⌈d/64⌉·Int4BytesPerWord bytes.
func Int4Pack(dst []byte, vals []int8) {
	nw := (len(vals) + 63) / 64
	if len(dst) < nw*Int4BytesPerWord {
		panic(fmt.Sprintf("tensor: Int4Pack dst %d bytes, want %d", len(dst), nw*Int4BytesPerWord))
	}
	dst = dst[:nw*Int4BytesPerWord]
	for i := range dst {
		dst[i] = 0x88 // both nibbles encode value 0
	}
	for d, v := range vals {
		if v < -7 || v > 7 {
			panic(fmt.Sprintf("tensor: Int4Pack value %d at %d outside [-7, 7]", v, d))
		}
		nib := byte(v + 8)
		b := (d>>6)*Int4BytesPerWord + d&31
		if d&63 < 32 {
			dst[b] = dst[b]&0xF0 | nib
		} else {
			dst[b] = dst[b]&0x0F | nib<<4
		}
	}
}

// int4Spread maps 8 query bits to a nibble-select mask: bit i set → nibble
// 0x0F at byte i of the uint64.
var int4Spread = func() (lut [256]uint64) {
	for b := range lut {
		var m uint64
		for i := 0; i < 8; i++ {
			if b>>i&1 == 1 {
				m |= 0x0F << (8 * i)
			}
		}
		lut[b] = m
	}
	return
}()

// Int4SignDot returns Σ_d sign_d · w_d for one packed int4 row against one
// sign-packed bipolar query: nib holds len(q) groups of Int4BytesPerWord
// bytes (see Int4Pack), q's tail bits past the row's true dimension are zero,
// and rowSum is Σ_d w_d (precomputed once per row at pack time). The total
// dimension must stay below 2^17 (the amd64 kernel accumulates in int16).
func Int4SignDot(nib []byte, q []uint64, rowSum int32) int32 {
	if len(q) == 0 {
		return 0
	}
	if len(nib) < len(q)*Int4BytesPerWord {
		panic(fmt.Sprintf("tensor: Int4SignDot nib %d bytes for %d words", len(nib), len(q)))
	}
	if useGemmAsm {
		return int4SignDotAsm(len(q), &nib[0], &q[0])
	}
	return int4SignDotGo(nib, q, rowSum)
}

// int4SignDotGo is the portable SWAR kernel: dot = rowSum − 2·Σ_{set bits} w.
// Each uint64 load holds 16 selected nibbles summed into 8 byte lanes (lane
// value ≤ 2·15 = 30, byte total ≤ 240 — the multiply-shift horizontal add
// needs < 256, so the collapse happens per load); the −8 offsets cancel
// through 8·popcount(q).
func int4SignDotGo(nib []byte, q []uint64, rowSum int32) int32 {
	var selNib, pc int64
	for g, qw := range q {
		base := g * Int4BytesPerWord
		for j := 0; j < 4; j++ {
			u := binary.LittleEndian.Uint64(nib[base+8*j:])
			mask := int4Spread[qw>>(8*j)&0xFF] | int4Spread[qw>>(32+8*j)&0xFF]<<4
			sel := u & mask
			bsum := sel&0x0F0F0F0F0F0F0F0F + sel>>4&0x0F0F0F0F0F0F0F0F
			selNib += int64(bsum * 0x0101010101010101 >> 56)
		}
		pc += int64(bits.OnesCount64(qw))
	}
	// Σ_{set} w = Σ_{set} (nib − 8) = selNib − 8·popcount.
	return rowSum - 2*int32(selNib-8*pc)
}

// TernarySignDot returns Σ_d sign_d · t_d for one ternary row against a
// sign-packed bipolar query: t_d = ±1 where msk bit d is set (sgn bit set =
// −1), 0 elsewhere; nnz is the row's popcount(msk), precomputed. Mask bits
// past the true dimension must be zero (the query's tail bits need not be).
func TernarySignDot(sgn, msk, q []uint64, nnz int32) int32 {
	if len(sgn) < len(q) || len(msk) < len(q) {
		panic(fmt.Sprintf("tensor: TernarySignDot row words %d/%d for %d query words", len(sgn), len(msk), len(q)))
	}
	ham := XorMaskPopcount(q, sgn, msk)
	return nnz - 2*int32(ham)
}
