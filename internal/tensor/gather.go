package tensor

import "fmt"

// GatherColBlocks returns a new tensor holding the kept column blocks of t,
// concatenated in order: keep lists ascending block indices over t's
// [0, Cols) grid of `block`-wide blocks (the last block may be ragged). This
// is the dense-matrix counterpart of BipolarGen.GatherBlocks — the two agree
// on which original column lands where, so a pruned engine's stored and
// rematerialized projections stay bit-identical.
func GatherColBlocks(t *Tensor, keep []int, block int) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: GatherColBlocks expects rank 2, got %v", t.Shape))
	}
	if block <= 0 {
		panic("tensor: GatherColBlocks block must be positive")
	}
	rows, cols := t.Shape[0], t.Shape[1]
	nb := (cols + block - 1) / block
	var width int
	prev := -1
	for _, b := range keep {
		if b <= prev || b >= nb {
			panic(fmt.Sprintf("tensor: GatherColBlocks block %d not ascending in [0, %d)", b, nb))
		}
		prev = b
		hi := (b + 1) * block
		if hi > cols {
			hi = cols
		}
		width += hi - b*block
	}
	if width == 0 {
		panic("tensor: GatherColBlocks keeps no blocks")
	}
	out := New(rows, width)
	for r := 0; r < rows; r++ {
		src := t.Row(r)
		dst := out.Row(r)
		at := 0
		for _, b := range keep {
			lo, hi := b*block, (b+1)*block
			if hi > cols {
				hi = cols
			}
			at += copy(dst[at:], src[lo:hi])
		}
	}
	return out
}
