package tensor

import (
	"math/bits"
	"math/rand"
	"sync"
	"testing"
)

// naiveInt4SignDot decodes the packed nibbles and folds the sign-packed query
// the slow, obvious way — the bit-exactness reference for both kernels.
func naiveInt4SignDot(nib []byte, q []uint64, d int) int32 {
	var dot int32
	for i := 0; i < d; i++ {
		b := nib[(i>>6)*Int4BytesPerWord+i&31]
		var v int32
		if i&63 < 32 {
			v = int32(b&0x0F) - 8
		} else {
			v = int32(b>>4) - 8
		}
		sign := int32(1)
		if q[i>>6]>>(uint(i)&63)&1 == 1 {
			sign = -1
		}
		dot += sign * v
	}
	return dot
}

func randSubByteRow(rng *rand.Rand, d int) (vals []int8, q []uint64, rowSum int32) {
	vals = make([]int8, d)
	for i := range vals {
		vals[i] = int8(rng.Intn(15) - 7)
		rowSum += int32(vals[i])
	}
	nw := (d + 63) / 64
	q = make([]uint64, nw)
	for i := range q {
		q[i] = rng.Uint64()
	}
	if d%64 != 0 {
		q[nw-1] &= 1<<(uint(d)%64) - 1 // query tail bits are zero per contract
	}
	return vals, q, rowSum
}

func TestInt4SignDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dims := []int{1, 31, 64, 65, 127, 128, 192, 250, 256, 1000, 3000}
	for _, d := range dims {
		for trial := 0; trial < 20; trial++ {
			vals, q, rowSum := randSubByteRow(rng, d)
			nib := make([]byte, len(q)*Int4BytesPerWord)
			Int4Pack(nib, vals)
			want := naiveInt4SignDot(nib, q, d)
			if got := Int4SignDot(nib, q, rowSum); got != want {
				t.Fatalf("d=%d trial=%d: Int4SignDot=%d naive=%d", d, trial, got, want)
			}
			if got := int4SignDotGo(nib, q, rowSum); got != want {
				t.Fatalf("d=%d trial=%d: int4SignDotGo=%d naive=%d", d, trial, got, want)
			}
		}
	}
}

func TestInt4SignDotAsmMatchesGo(t *testing.T) {
	if !useGemmAsm {
		t.Skip("no AVX2 kernel on this machine")
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(4096)
		vals, q, rowSum := randSubByteRow(rng, d)
		nib := make([]byte, len(q)*Int4BytesPerWord)
		Int4Pack(nib, vals)
		want := int4SignDotGo(nib, q, rowSum)
		if got := int4SignDotAsm(len(q), &nib[0], &q[0]); got != want {
			t.Fatalf("d=%d trial=%d: asm=%d go=%d", d, trial, got, want)
		}
	}
}

func TestInt4SignDotExtremes(t *testing.T) {
	// All-(+7) row vs all-(−1) query at a dimension large enough to stress the
	// int16 accumulators well past one block (16·7 per lane per group would
	// overflow at ~4681 groups; the documented bound is D < 2^17).
	const d = 1 << 16
	vals := make([]int8, d)
	for i := range vals {
		vals[i] = 7
	}
	q := make([]uint64, d/64)
	for i := range q {
		q[i] = ^uint64(0)
	}
	nib := make([]byte, len(q)*Int4BytesPerWord)
	Int4Pack(nib, vals)
	if got := Int4SignDot(nib, q, 7*d); got != -7*d {
		t.Fatalf("all-max negative dot = %d, want %d", got, -7*d)
	}
	for i := range q {
		q[i] = 0
	}
	if got := Int4SignDot(nib, q, 7*d); got != 7*d {
		t.Fatalf("all-max positive dot = %d, want %d", got, 7*d)
	}
}

func TestInt4PackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, d := range []int{1, 63, 64, 100, 129} {
		vals := make([]int8, d)
		for i := range vals {
			vals[i] = int8(rng.Intn(15) - 7)
		}
		nib := make([]byte, (d+63)/64*Int4BytesPerWord)
		Int4Pack(nib, vals)
		for i, v := range vals {
			b := nib[(i>>6)*Int4BytesPerWord+i&31]
			var got int8
			if i&63 < 32 {
				got = int8(b&0x0F) - 8
			} else {
				got = int8(b>>4) - 8
			}
			if got != v {
				t.Fatalf("d=%d dim %d: decoded %d, want %d", d, i, got, v)
			}
		}
		// Padding dims encode 0 so the tail contributes nothing.
		for i := d; i < len(nib)*2; i++ {
			b := nib[(i>>6)*Int4BytesPerWord+i&31]
			var got int8
			if i&63 < 32 {
				got = int8(b&0x0F) - 8
			} else {
				got = int8(b>>4) - 8
			}
			if got != 0 {
				t.Fatalf("d=%d padding dim %d decodes to %d, want 0", d, i, got)
			}
		}
	}
}

func naiveTernarySignDot(sgn, msk, q []uint64, d int) int32 {
	var dot int32
	for i := 0; i < d; i++ {
		w, b := i>>6, uint(i)&63
		if msk[w]>>b&1 == 0 {
			continue
		}
		v := int32(1)
		if sgn[w]>>b&1 == 1 {
			v = -1
		}
		if q[w]>>b&1 == 1 {
			v = -v
		}
		dot += v
	}
	return dot
}

func TestTernarySignDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{1, 64, 100, 256, 1000, 3000} {
		for trial := 0; trial < 20; trial++ {
			nw := (d + 63) / 64
			sgn := make([]uint64, nw)
			msk := make([]uint64, nw)
			q := make([]uint64, nw)
			var nnz int32
			for i := range sgn {
				sgn[i] = rng.Uint64()
				msk[i] = rng.Uint64() & rng.Uint64() // ~25% dense
				q[i] = rng.Uint64()
			}
			if d%64 != 0 {
				msk[nw-1] &= 1<<(uint(d)%64) - 1 // mask tail must be zero
			}
			for i := range msk {
				nnz += int32(bits.OnesCount64(msk[i]))
			}
			want := naiveTernarySignDot(sgn, msk, q, d)
			if got := TernarySignDot(sgn, msk, q, nnz); got != want {
				t.Fatalf("d=%d trial=%d: TernarySignDot=%d naive=%d", d, trial, got, want)
			}
		}
	}
}

// TestSubByteDotsParallel re-runs the same rows from many goroutines: the
// kernels are pure reads over shared packed rows, so every result must match
// the serial answer (exercised under -race by make check).
func TestSubByteDotsParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const d, rows = 2048, 16
	type row struct {
		nib      []byte
		sgn, msk []uint64
		rowSum   int32
		nnz      int32
	}
	rs := make([]row, rows)
	q := make([]uint64, d/64)
	for i := range q {
		q[i] = rng.Uint64()
	}
	wantI4 := make([]int32, rows)
	wantT := make([]int32, rows)
	for r := range rs {
		vals, _, rowSum := randSubByteRow(rng, d)
		nib := make([]byte, d/64*Int4BytesPerWord)
		Int4Pack(nib, vals)
		sgn := make([]uint64, d/64)
		msk := make([]uint64, d/64)
		var nnz int32
		for i := range sgn {
			sgn[i] = rng.Uint64()
			msk[i] = rng.Uint64() | rng.Uint64()
			nnz += int32(bits.OnesCount64(msk[i]))
		}
		rs[r] = row{nib: nib, sgn: sgn, msk: msk, rowSum: rowSum, nnz: nnz}
		wantI4[r] = Int4SignDot(nib, q, rowSum)
		wantT[r] = TernarySignDot(sgn, msk, q, nnz)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for r := range rs {
					if got := Int4SignDot(rs[r].nib, q, rs[r].rowSum); got != wantI4[r] {
						t.Errorf("parallel Int4SignDot row %d: %d != %d", r, got, wantI4[r])
						return
					}
					if got := TernarySignDot(rs[r].sgn, rs[r].msk, q, rs[r].nnz); got != wantT[r] {
						t.Errorf("parallel TernarySignDot row %d: %d != %d", r, got, wantT[r])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
