package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randInt8Operands(rng *rand.Rand, m, n, k int, extreme bool) ([]int8, []uint8) {
	a := make([]int8, m*k)
	b := make([]uint8, k*n)
	if extreme {
		// Saturation extremes: the values that overflow i16 intermediates in
		// kernels built on saturating multiply-add instructions.
		av := []int8{-128, -127, 127, 126, 1, 0}
		bv := []uint8{255, 254, 128, 127, 1, 0}
		for i := range a {
			a[i] = av[rng.Intn(len(av))]
		}
		for i := range b {
			b[i] = bv[rng.Intn(len(bv))]
		}
	} else {
		for i := range a {
			a[i] = int8(rng.Intn(256) - 128)
		}
		for i := range b {
			b[i] = uint8(rng.Intn(256))
		}
	}
	return a, b
}

func checkInt8AgainstNaive(t *testing.T, m, n, k int, extreme bool, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a, b := randInt8Operands(rng, m, n, k, extreme)
	want := make([]int32, m*n)
	MatMulInt8NaiveInto(want, a, b, m, n, k)

	got := make([]int32, m*n)
	MatMulInt8Into(got, a, b, m, n, k)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MatMulInt8Into (%dx%dx%d extreme=%v): dst[%d] = %d, want %d", m, n, k, extreme, i, got[i], want[i])
		}
	}

	scratch := make([]uint8, Int8GemmScratch())
	serial := make([]int32, m*n)
	MatMulInt8SerialInto(serial, a, b, m, n, k, scratch)
	for i := range want {
		if serial[i] != want[i] {
			t.Fatalf("MatMulInt8SerialInto (%dx%dx%d extreme=%v): dst[%d] = %d, want %d", m, n, k, extreme, i, serial[i], want[i])
		}
	}
}

// TestMatMulInt8BitExactQuick is the acceptance property: for random shapes
// and values — including saturation extremes — the blocked kernel (parallel
// and serial, asm or pure Go) is bit-exact against the naive int32 reference.
func TestMatMulInt8BitExactQuick(t *testing.T) {
	f := func(ms, ns, ks uint8, extreme bool, seed int64) bool {
		// Shapes crossing the 4-row / 16-col tile boundaries and staying small
		// enough to run many iterations.
		m := int(ms)%21 + 1
		n := int(ns)%40 + 1
		k := int(ks)%70 + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := randInt8Operands(rng, m, n, k, extreme)
		want := make([]int32, m*n)
		MatMulInt8NaiveInto(want, a, b, m, n, k)
		got := make([]int32, m*n)
		MatMulInt8Into(got, a, b, m, n, k)
		serial := make([]int32, m*n)
		MatMulInt8SerialInto(serial, a, b, m, n, k, make([]uint8, Int8GemmScratch()))
		for i := range want {
			if got[i] != want[i] || serial[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMatMulInt8Blocked exercises shapes that cross every blocking boundary:
// K past gemmKC, N past gemmNC, plus row/column/K-quad tails.
func TestMatMulInt8Blocked(t *testing.T) {
	cases := []struct{ m, n, k int }{
		{1, 1, 1},
		{4, 16, 4},
		{5, 17, 7},
		{3, 15, 9},
		{8, 48, 64},
		{13, 37, 259},  // K crosses gemmKC with a quad tail
		{6, 300, 31},   // N crosses gemmNC
		{21, 272, 517}, // both, with tails everywhere
		{64, 16, 1024}, // deep K, aligned
	}
	for _, c := range cases {
		checkInt8AgainstNaive(t, c.m, c.n, c.k, false, int64(c.m*1000+c.n*10+c.k))
		checkInt8AgainstNaive(t, c.m, c.n, c.k, true, int64(c.m*999+c.n*7+c.k))
	}
}

func TestMatMulInt8Empty(t *testing.T) {
	dst := []int32{7, 7, 7, 7}
	MatMulInt8Into(dst[:0], nil, nil, 0, 0, 5)
	MatMulInt8Into(dst, []int8{}, []uint8{}, 2, 2, 0)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("k=0 GEMM must zero dst, dst[%d]=%d", i, v)
		}
	}
}

func TestDotU8I8(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{0, 1, 7, 31, 32, 33, 64, 96, 127, 257, 1024} {
		x := make([]uint8, k)
		w := make([]int8, k)
		var want int32
		for i := range x {
			x[i] = uint8(rng.Intn(256))
			w[i] = int8(rng.Intn(256) - 128)
			want += int32(x[i]) * int32(w[i])
		}
		if got := DotU8I8(x, w); got != want {
			t.Fatalf("DotU8I8 k=%d: got %d, want %d", k, got, want)
		}
	}
	// Extremes: every element at max magnitude.
	k := 320
	x := make([]uint8, k)
	w := make([]int8, k)
	for i := range x {
		x[i] = 255
		w[i] = -128
	}
	want := int32(k) * 255 * -128
	if got := DotU8I8(x, w); got != want {
		t.Fatalf("DotU8I8 extremes: got %d, want %d", got, want)
	}
}

func TestQuantizeDequantizeU8(t *testing.T) {
	src := []float32{-1.3, -0.5, 0, 0.25, 0.5, 1.0, 2.7, 100}
	scale := float32(0.02)
	zero := uint8(128)
	q := make([]uint8, len(src))
	QuantizeU8(q, src, scale, zero)
	back := make([]float32, len(src))
	DequantizeU8(back, q, scale, zero)
	for i, v := range src {
		// Values inside the representable range round-trip within half a step;
		// out-of-range values clamp to an endpoint.
		lo := scale * (0 - float32(zero))
		hi := scale * (255 - float32(zero))
		want := v
		if want < lo {
			want = lo
		}
		if want > hi {
			want = hi
		}
		if d := back[i] - want; d > scale/2+1e-6 || d < -scale/2-1e-6 {
			t.Fatalf("round trip src[%d]=%g: got %g, want within %g of %g", i, v, back[i], scale/2, want)
		}
	}
}

func TestRequantizeU8Row(t *testing.T) {
	acc := []int32{-1000, -1, 0, 1, 499, 500, 1000000}
	dst := make([]uint8, len(acc))
	RequantizeU8Row(dst, acc, 0, 0.01, 100, 10, 200)
	want := []uint8{90, 100, 100, 100, 105, 105, 200}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("requant acc=%d: got %d, want %d", acc[i], dst[i], want[i])
		}
	}
	// Bias shifts the accumulator before scaling.
	RequantizeU8Row(dst[:1], []int32{400}, 100, 0.01, 100, 0, 255)
	if dst[0] != 105 {
		t.Fatalf("requant with bias: got %d, want 105", dst[0])
	}
}

func TestIm2ColU8MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ConvGeom{InC: 3, InH: 7, InW: 6, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	n := g.InC * g.InH * g.InW
	xq := make([]uint8, n)
	xf := make([]float32, n)
	zero := uint8(77)
	for i := range xq {
		xq[i] = uint8(rng.Intn(256))
		xf[i] = float32(int32(xq[i]) - int32(zero))
	}
	rows := g.InC * g.KH * g.KW
	nOut := g.OutH() * g.OutW()
	colsQ := make([]uint8, rows*nOut)
	Im2ColU8(g, xq, colsQ, zero)
	colsF := New(rows, nOut)
	Im2Col(g, xf, colsF)
	for i := range colsQ {
		if float32(int32(colsQ[i])-int32(zero)) != colsF.Data[i] {
			t.Fatalf("Im2ColU8 mismatch at %d: q=%d (pad=%d), float=%g", i, colsQ[i], zero, colsF.Data[i])
		}
	}
}

func TestArenaU8Int32Slabs(t *testing.T) {
	ar := NewArena()
	q := ar.AllocU8(0.5, 10, 2, 3)
	if q.Len() != 6 || len(q.Data) != 6 || q.Scale != 0.5 || q.Zero != 10 {
		t.Fatalf("AllocU8 header wrong: %+v", q)
	}
	acc := ar.Int32s(8)
	if len(acc) != 8 {
		t.Fatalf("Int32s len %d", len(acc))
	}
	ar.Freeze()
	mark := ar.Mark()
	q2 := ar.AllocU8(1, 0, 6)
	for i := range q2.Data {
		q2.Data[i] = uint8(i)
	}
	acc2 := ar.Int32s(8)
	_ = acc2
	ar.Release(mark)
	q3 := ar.AllocU8(1, 0, 6)
	if &q3.Data[0] != &q2.Data[0] {
		t.Fatal("Release must rewind the byte slab")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("frozen arena must panic on byte slab overflow")
		}
	}()
	ar.Bytes(1)
}

func BenchmarkMatMulInt8(b *testing.B) {
	for _, sz := range []struct{ m, n, k int }{{64, 1024, 576}, {256, 256, 256}} {
		a8, b8 := randInt8Operands(rand.New(rand.NewSource(1)), sz.m, sz.n, sz.k, false)
		dst := make([]int32, sz.m*sz.n)
		scratch := make([]uint8, Int8GemmScratch())
		b.Run("serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMulInt8SerialInto(dst, a8, b8, sz.m, sz.n, sz.k, scratch)
			}
		})
	}
}

// TestPackPanelInt8AsmMatchesGo: the SIMD byte-transpose pack must produce
// byte-identical panels to the scalar reference at assorted quad counts and
// row strides.
func TestPackPanelInt8AsmMatchesGo(t *testing.T) {
	if !useInt8Asm {
		t.Skip("no VNNI pack kernel on this target")
	}
	rng := NewRNG(97)
	for _, c := range []struct{ k, n, pb, pe, jb, je int }{
		{4, 16, 0, 4, 0, 16},
		{28, 64, 0, 28, 16, 64},
		{144, 96, 16, 144, 0, 96},
		{40, 48, 8, 36, 16, 48},
	} {
		b := make([]uint8, c.k*c.n)
		for i := range b {
			b[i] = uint8(rng.Intn(256))
		}
		want := make([]uint8, gemmKC*gemmNC)
		got := make([]uint8, gemmKC*gemmNC)
		packPanelInt8Go(want, b, c.n, c.pb, c.pe, c.jb, c.je)
		packPanelInt8(got, b, c.n, c.pb, c.pe, c.jb, c.je)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("case %+v: packed byte %d: asm %d, go %d", c, i, got[i], want[i])
			}
		}
	}
}

// TestElementwiseAsmMatchesScalar: the SIMD requantize/quantize/dequantize
// bodies must agree bit-for-bit with the scalar loops, including
// round-half-away behavior on negative values and clamp saturation. Lengths
// straddle the 8-lane boundary so both the vector body and the scalar tail
// run.
func TestElementwiseAsmMatchesScalar(t *testing.T) {
	if !useInt8Asm {
		t.Skip("no vector element kernels on this target")
	}
	rng := NewRNG(181)
	for _, n := range []int{1, 7, 8, 9, 64, 1000, 1003} {
		acc := make([]int32, n)
		for i := range acc {
			acc[i] = int32(rng.Intn(1<<25) - 1<<24)
		}
		bias := int32(rng.Intn(4096) - 2048)
		scale := float32(rng.Float64()*1e-3 + 1e-5)
		zero := uint8(rng.Intn(256))
		lo, hi := uint8(rng.Intn(128)), uint8(128+rng.Intn(128))
		got := make([]uint8, n)
		RequantizeU8Row(got, acc, bias, scale, zero, lo, hi)
		z, l, h := int32(zero), int32(lo), int32(hi)
		for j, v := range acc {
			q := RoundAway(float32(v+bias)*scale) + z
			if q < l {
				q = l
			} else if q > h {
				q = h
			}
			if got[j] != uint8(q) {
				t.Fatalf("requant n=%d elem %d: asm %d, scalar %d (acc=%d)", n, j, got[j], q, v)
			}
		}

		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormFloat64() * 100)
		}
		qs := float32(rng.Float64() + 0.5)
		qgot := make([]uint8, n)
		QuantizeU8(qgot, src, qs, zero)
		inv := 1 / qs
		for i, v := range src {
			q := RoundAway(v*inv) + z
			if q < 0 {
				q = 0
			} else if q > 255 {
				q = 255
			}
			if qgot[i] != uint8(q) {
				t.Fatalf("quantize n=%d elem %d: asm %d, scalar %d (v=%g)", n, i, qgot[i], q, v)
			}
		}

		dgot := make([]float32, n)
		DequantizeU8(dgot, qgot, qs, zero)
		for i, q := range qgot {
			if want := qs * float32(int32(q)-z); dgot[i] != want {
				t.Fatalf("dequantize n=%d elem %d: asm %g, scalar %g", n, i, dgot[i], want)
			}
		}
	}
}
