package tensor

// useInt8Asm gates the VNNI int8 micro-kernels in int8_amd64.s. The kernels
// use the EVEX-encoded 256-bit form of VPDPBUSD, which requires AVX512F +
// AVX512VL + AVX512VNNI and OS-enabled AVX-512 register state (XCR0 opmask,
// upper-ZMM and hi16-ZMM bits). Everywhere else — including amd64 machines
// with only AVX2 — the blocked pure-Go int8 kernel runs instead, with
// bit-identical results.
var useInt8Asm = detectInt8VNNI()

func detectInt8VNNI() bool {
	if !useGemmAsm {
		// detectAVX2FMA already verified CPUID range, OSXSAVE and XMM/YMM
		// state; without those the wider checks below are meaningless.
		return false
	}
	// XCR0 bits 5..7 (opmask, ZMM_Hi256, Hi16_ZMM) on top of SSE+AVX.
	xlo, _ := xgetbv0()
	if xlo&0xe6 != 0xe6 {
		return false
	}
	const (
		avx512fBit    = 1 << 16 // EBX
		avx512vlBit   = 1 << 31 // EBX
		avx512vnniBit = 1 << 11 // ECX
	)
	_, b7, c7, _ := cpuidex(7, 0)
	return b7&avx512fBit != 0 && b7&avx512vlBit != 0 && c7&avx512vnniBit != 0
}

// gemmInt8_4x16 accumulates a 4×16 int32 output tile over kq K-quads:
// o[r][0:16] += Σ_q Σ_{t<4} a_r[4q+t] * bp[...], with bp a packed strip in
// which each dword holds the four K bytes of one column (see packPanelInt8).
// kq must be ≥ 1; each o_r must have at least 16 addressable elements. a
// pointers are read 4 bytes at a time (whole quads only).
//
//go:noescape
func gemmInt8_4x16(kq int, a0, a1, a2, a3 *int8, bp *uint8, o0, o1, o2, o3 *int32)

// dotU8I8Asm returns Σ x[i]·w[i] over n elements; n must be a positive
// multiple of 32.
//
//go:noescape
func dotU8I8Asm(n int, x *uint8, w *int8) int32

// packQuad16Asm packs kq K-quads of one 16-column strip of b (row stride n)
// into buf, 64 bytes per quad, column-quad dword layout (see packPanelInt8).
// kq must be ≥ 1 and all 4·kq rows × 16 columns must be addressable.
//
//go:noescape
func packQuad16Asm(kq, n int, b *uint8, buf *uint8)

// requantU8Asm is the vector RequantizeU8Row body; n must be a positive
// multiple of 8. Bit-identical to the scalar loop.
//
//go:noescape
func requantU8Asm(n int, acc *int32, dst *uint8, bias int32, scale float32, zero, lo, hi int32)

// quantU8Asm is the vector QuantizeU8 body; n must be a positive multiple
// of 8. Bit-identical to the scalar loop.
//
//go:noescape
func quantU8Asm(n int, src *float32, dst *uint8, inv float32, zero int32)

// dequantU8Asm is the vector DequantizeU8 body; n must be a positive
// multiple of 8. Bit-identical to the scalar loop.
//
//go:noescape
func dequantU8Asm(n int, src *uint8, dst *float32, scale float32, zero int32)
