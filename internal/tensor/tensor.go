// Package tensor implements dense float32 tensors and the numeric kernels
// (matmul, im2col, reductions, elementwise maps) used by the neural-network
// and hyperdimensional-computing layers of NSHD.
//
// Tensors are row-major with explicit shapes. The package is deliberately
// small: it supports exactly what a CIFAR-scale CNN plus an HD pipeline
// needs, with no views or broadcasting beyond what those callers use.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zeroed tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// SliceCols copies columns [lo, hi) of a rank-2 tensor into a new contiguous
// [rows, hi−lo] tensor. A copy, not a view: the blocked GEMM and the packed
// classifiers require contiguous row-major storage, so dimension shards
// materialize their column range once at compile time.
func SliceCols(t *Tensor, lo, hi int) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: SliceCols requires a rank-2 tensor")
	}
	rows, cols := t.Shape[0], t.Shape[1]
	if lo < 0 || hi > cols || lo >= hi {
		panic(fmt.Sprintf("tensor: SliceCols range [%d, %d) out of [0, %d)", lo, hi, cols))
	}
	w := hi - lo
	out := New(rows, w)
	for r := 0; r < rows; r++ {
		copy(out.Data[r*w:(r+1)*w], t.Data[r*cols+lo:r*cols+hi])
	}
	return out
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != u.Shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape. One dimension
// may be -1, in which case it is inferred. Panics if the element counts
// disagree.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	known := 1
	infer := -1
	out := append([]int(nil), shape...)
	for i, s := range out {
		if s == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dimensions in Reshape")
			}
			infer = i
			continue
		}
		known *= s
	}
	if infer >= 0 {
		if known == 0 || len(t.Data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.Shape, shape))
		}
		out[infer] = len(t.Data) / known
		known *= out[infer]
	}
	if known != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v to %v changes element count", t.Shape, shape))
	}
	return &Tensor{Shape: out, Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	clear(t.Data)
}

// Apply replaces each element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// Map returns a new tensor whose elements are f applied to t's.
func (t *Tensor) Map(f func(float32) float32) *Tensor {
	c := t.Clone()
	c.Apply(f)
	return c
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if len(t.Data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.Shape, t.Data)
	}
	return fmt.Sprintf("Tensor%v[%d elems, mean=%.4g]", t.Shape, len(t.Data), t.Mean())
}

// Sum returns the sum of all elements (accumulated in float64).
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Std returns the population standard deviation of all elements.
func (t *Tensor) Std() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	m := t.Mean()
	s := 0.0
	for _, v := range t.Data {
		d := float64(v) - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(t.Data)))
}

// Max returns the maximum element and its flat index.
func (t *Tensor) Max() (float32, int) {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	best, at := t.Data[0], 0
	for i, v := range t.Data {
		if v > best {
			best, at = v, i
		}
	}
	return best, at
}

// Min returns the minimum element and its flat index.
func (t *Tensor) Min() (float32, int) {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	best, at := t.Data[0], 0
	for i, v := range t.Data {
		if v < best {
			best, at = v, i
		}
	}
	return best, at
}

// Argmax returns the flat index of the maximum element.
func (t *Tensor) Argmax() int {
	_, at := t.Max()
	return at
}

// Row returns row i of a 2-D tensor as a slice aliasing t's data.
func (t *Tensor) Row(i int) []float32 {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on rank-%d tensor", len(t.Shape)))
	}
	w := t.Shape[1]
	return t.Data[i*w : (i+1)*w]
}

// L2Norm returns the Euclidean norm of all elements.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}
