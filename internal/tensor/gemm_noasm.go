//go:build !amd64

package tensor

// Non-amd64 builds always use the portable broadcast-AXPY kernel.
const useGemmAsm = false

func gemm4x16(kc int, a0, a1, a2, a3, bp, o0, o1, o2, o3 *float32) {
	panic("tensor: gemm4x16 requires amd64")
}

func gemm1x16s(kc, ns int, a, bp, o *float32) {
	panic("tensor: gemm1x16s requires amd64")
}

func dot8(n int, x, y *float32) float32 {
	panic("tensor: dot8 requires amd64")
}

func reluAsm(n int, p *float32) {
	panic("tensor: reluAsm requires amd64")
}

func addScalarReluAsm(n int, p *float32, b float32) {
	panic("tensor: addScalarReluAsm requires amd64")
}

func packSignsAsm(nwords int, src *float32, dst *uint64) {
	panic("tensor: packSignsAsm requires amd64")
}
