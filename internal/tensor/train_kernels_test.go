package tensor

import (
	"math"
	"testing"
)

func TestMatMulTIntoMatchesMatMulT(t *testing.T) {
	rng := NewRNG(7)
	a := New(13, 97)
	b := New(5, 97)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	want := MatMulT(a, b)
	dst := New(13, 5)
	dst.Fill(42) // must be fully overwritten
	MatMulTInto(dst, a, b)
	for i := range want.Data {
		if math.Float32bits(dst.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("MatMulTInto[%d] = %v, want %v", i, dst.Data[i], want.Data[i])
		}
	}
}

func TestMatMulTAccSerialAccumulates(t *testing.T) {
	rng := NewRNG(9)
	a := New(6, 33)
	b := New(4, 33)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	prod := MatMulT(a, b)
	dst := New(6, 4)
	dst.Fill(1)
	MatMulTAccSerial(dst, a, b)
	for i := range dst.Data {
		want := prod.Data[i] + 1
		if math.Abs(float64(dst.Data[i]-want)) > 1e-5 {
			t.Fatalf("MatMulTAccSerial[%d] = %v, want %v", i, dst.Data[i], want)
		}
	}
}

func TestTransposeIntoMatchesTranspose(t *testing.T) {
	rng := NewRNG(11)
	a := New(70, 41)
	rng.FillNormal(a, 0, 1)
	want := Transpose(a)
	dst := New(41, 70)
	TransposeInto(dst, a)
	for i := range want.Data {
		if dst.Data[i] != want.Data[i] {
			t.Fatalf("TransposeInto[%d] = %v, want %v", i, dst.Data[i], want.Data[i])
		}
	}
}

func TestTransposeMatMulIntoMatchesReference(t *testing.T) {
	rng := NewRNG(13)
	a := New(29, 7) // K×M
	b := New(29, 11)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	want := TransposeMatMul(a, b)
	dst := New(7, 11)
	TransposeMatMulInto(dst, a, b, nil)
	for i := range want.Data {
		if math.Abs(float64(dst.Data[i]-want.Data[i])) > 1e-5 {
			t.Fatalf("TransposeMatMulInto[%d] = %v, want %v", i, dst.Data[i], want.Data[i])
		}
	}
	// Caller-owned scratch path must agree bit-for-bit with the pooled path.
	dst2 := New(7, 11)
	scratch := make([]float32, a.Len())
	TransposeMatMulInto(dst2, a, b, scratch)
	for i := range dst.Data {
		if math.Float32bits(dst.Data[i]) != math.Float32bits(dst2.Data[i]) {
			t.Fatalf("scratch path diverges at %d", i)
		}
	}
}

func TestFloatPoolRecycles(t *testing.T) {
	buf := GetFloats(1 << 12)
	if len(buf) != 1<<12 {
		t.Fatalf("GetFloats length %d", len(buf))
	}
	PutFloats(buf)
	small := GetFloats(16)
	if len(small) != 16 {
		t.Fatalf("GetFloats length %d", len(small))
	}
	PutFloats(small)
}

func TestArenaGrowServesFromSlabs(t *testing.T) {
	a := NewArena()
	a.Alloc(128)
	a.Floats(64)
	a.Reset()
	a.Grow()
	f := a.Floats(64)
	if len(f) != 64 {
		t.Fatalf("Floats length %d", len(f))
	}
	// Within the grown slab: the second allocation must be contiguous with
	// the first (bump allocation), proving the slab path is taken.
	g := a.Floats(64)
	if &f[:cap(f)][cap(f)-1] == &g[0] {
		t.Fatal("allocations overlap")
	}
	// Exceeding the slab must fall back to the heap, not panic.
	big := a.Floats(1 << 16)
	if len(big) != 1<<16 {
		t.Fatalf("overflow Floats length %d", len(big))
	}
	a.Reset()
	a.Grow() // absorb the new peak
	if got := a.Floats(1 << 16); len(got) != 1<<16 {
		t.Fatalf("post-grow Floats length %d", len(got))
	}
}
