package tensor

import "fmt"

// Seeded bipolar generation. A BipolarGen defines a [Rows, Cols] ±1 matrix
// purely as a function of a 64-bit seed: entry (r, c) is bit c%64 of a
// splitmix64 counter stream evaluated at index r·⌈Cols/64⌉ + c/64. Because
// every 64-column word is an independent function of (seed, position), any
// tile, strip or single row can be regenerated in isolation — random access,
// not sequential replay — which is what lets the GEMM panel packer
// rematerialize projection panels on the fly instead of streaming a stored
// D×F matrix (the hypervector-rematerialization idea: the model "is" the
// seed).
//
// The generated matrix is a fixed public contract: FillInto, FillTile and
// the panel kernels in gemm_panels.go all reproduce bit-identical values for
// the same (seed, rows, cols), and TestBipolarGenTileConsistency pins it.
type BipolarGen struct {
	Rows, Cols int
	seed       uint64
	wpr        int // 64-bit words per row of the FULL matrix: ⌈fullCols/64⌉
	colOff     int // column offset into the full matrix (0 when unsliced)
	// blockMap, when non-nil, gathers a pruned column subset: generated word
	// wi is full-matrix word blockMap[wi] (see GatherBlocks). The map is
	// word-granular, which is why pruning happens in 64-aligned blocks.
	blockMap []int
}

// splitmixGamma is the Weyl-sequence increment of splitmix64.
const splitmixGamma = 0x9E3779B97F4A7C15

// bipolarLUT maps a sign byte to its eight ±1 float32 values (bit clear →
// +1), so unpacking runs as two table copies per 16 elements instead of 16
// shift-and-convert steps.
var bipolarLUT = func() (lut [256][8]float32) {
	for b := range lut {
		for i := 0; i < 8; i++ {
			lut[b][i] = 1 - 2*float32((b>>i)&1)
		}
	}
	return
}()

// NewBipolarGen defines the seeded [rows, cols] ±1 matrix.
func NewBipolarGen(seed int64, rows, cols int) *BipolarGen {
	return &BipolarGen{Rows: rows, Cols: cols, seed: uint64(seed), wpr: (cols + 63) / 64}
}

// Seed returns the defining seed.
func (g *BipolarGen) Seed() int64 { return int64(g.seed) }

// ColOff returns the slice's column offset into the full matrix (0 when the
// generator is unsliced).
func (g *BipolarGen) ColOff() int { return g.colOff }

// SliceCols returns a generator for columns [lo, hi) of g: a [Rows, hi−lo]
// view whose entry (r, c) is bit-identical to g's entry (r, lo+c). The slice
// shares the parent's seed and word grid, so a shard can regenerate exactly
// its own columns from the same 8-byte seed — the basis of dimension-sharded
// rematerialization. Slices of slices compose.
func (g *BipolarGen) SliceCols(lo, hi int) *BipolarGen {
	if lo == 0 && hi == g.Cols {
		return g
	}
	if g.blockMap != nil {
		panic("tensor: BipolarGen.SliceCols on a gathered generator")
	}
	if lo < 0 || hi > g.Cols || lo >= hi {
		panic("tensor: BipolarGen.SliceCols range out of bounds")
	}
	return &BipolarGen{Rows: g.Rows, Cols: hi - lo, seed: g.seed, wpr: g.wpr, colOff: g.colOff + lo}
}

// GatherBlocks returns a generator for the concatenation of the kept column
// blocks of g: keep lists ascending block indices over g's [0, Cols) grid of
// `block`-wide blocks (block a multiple of 64, so every kept block starts on
// a word boundary), and entry (r, c) of the result is bit-identical to g's
// entry in the corresponding original column. Only the final original block
// may be ragged, and ascending order keeps it last, so the gathered matrix's
// one partial word is its last — exactly the invariant the panel kernels and
// sign-packing already handle. This is what lets a dimension-pruned engine
// keep rematerializing its surviving projection columns from the original
// 8-byte seed plus the block list.
func (g *BipolarGen) GatherBlocks(keep []int, block int) *BipolarGen {
	if g.colOff != 0 || g.blockMap != nil {
		panic("tensor: BipolarGen.GatherBlocks on a sliced or gathered generator")
	}
	if block <= 0 || block%64 != 0 {
		panic("tensor: BipolarGen.GatherBlocks block must be a positive multiple of 64")
	}
	nb := (g.Cols + block - 1) / block
	var cols int
	var bm []int
	prev := -1
	for _, b := range keep {
		if b <= prev || b >= nb {
			panic(fmt.Sprintf("tensor: BipolarGen.GatherBlocks block %d not ascending in [0, %d)", b, nb))
		}
		prev = b
		lo := b * block
		hi := lo + block
		if hi > g.Cols {
			hi = g.Cols
		}
		cols += hi - lo
		for w := lo >> 6; w < (hi+63)>>6; w++ {
			bm = append(bm, w)
		}
	}
	if cols == 0 {
		panic("tensor: BipolarGen.GatherBlocks keeps no blocks")
	}
	return &BipolarGen{Rows: g.Rows, Cols: cols, seed: g.seed, wpr: g.wpr, blockMap: bm}
}

// rawWord is splitmix64's output function on the per-(row, word) counter of
// the FULL matrix's word grid, so words are mutually independent and
// individually addressable.
func (g *BipolarGen) rawWord(r, wi int) uint64 {
	x := g.seed + (uint64(r)*uint64(g.wpr)+uint64(wi)+1)*splitmixGamma
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// word returns the 64-bit sign word covering slice-relative columns
// [wi·64, wi·64+64) of row r: element (r, wi·64+b) is +1 when bit b is
// clear, −1 when set. For an unsliced generator this is one splitmix64
// evaluation; a slice whose offset is not word-aligned synthesizes the word
// from the two straddled full-matrix words.
func (g *BipolarGen) word(r, wi int) uint64 {
	if g.blockMap != nil {
		return g.rawWord(r, g.blockMap[wi])
	}
	if g.colOff == 0 {
		return g.rawWord(r, wi)
	}
	abs := g.colOff + wi<<6
	aw, sh := abs>>6, uint(abs&63)
	w := g.rawWord(r, aw) >> sh
	if sh != 0 {
		w |= g.rawWord(r, aw+1) << (64 - sh)
	}
	return w
}

// at returns element (r, c) as ±1.
func (g *BipolarGen) at(r, c int) float32 {
	return 1 - 2*float32((g.word(r, c>>6)>>uint(c&63))&1)
}

// FillInto materializes the whole matrix into t ([Rows, Cols]).
func (g *BipolarGen) FillInto(t *Tensor) {
	if t.Rank() != 2 || t.Shape[0] != g.Rows || t.Shape[1] != g.Cols {
		panic("tensor: BipolarGen.FillInto shape mismatch")
	}
	g.FillTile(t.Data, g.Cols, 0, g.Rows, 0, g.Cols)
}

// FillTile materializes rows [r0,r1) × cols [c0,c1) into dst, a row-major
// tile with leading dimension ld whose (0,0) corresponds to (r0,c0).
func (g *BipolarGen) FillTile(dst []float32, ld, r0, r1, c0, c1 int) {
	for r := r0; r < r1; r++ {
		row := dst[(r-r0)*ld:]
		c := c0
		for c < c1 {
			run := 64 - c&63
			if run > c1-c {
				run = c1 - c
			}
			w := g.word(r, c>>6) >> uint(c&63)
			for b := 0; b < run; b++ {
				row[c-c0+b] = 1 - 2*float32(w&1)
				w >>= 1
			}
			c += run
		}
	}
}

// fillStrips generates rows [pb,pe) × cols [jb,jfullEnd) directly in the
// GEMM's packed-panel layout (16-wide column strips, p-major within each
// strip — the layout packPanel16 produces from a stored matrix). jb and
// jfullEnd must be multiples of 16, so each strip's 16 columns always sit
// inside one 64-bit generator word.
func (g *BipolarGen) fillStrips(buf []float32, pb, pe, jb, jfullEnd int) {
	si := 0
	for js := jb; js < jfullEnd; js += 16 {
		wi := js >> 6
		sh := uint(js & 63)
		for p := pb; p < pe; p++ {
			w := g.word(p, wi) >> sh
			s := buf[si : si+16 : si+16]
			copy(s[:8], bipolarLUT[w&0xff][:])
			copy(s[8:], bipolarLUT[(w>>8)&0xff][:])
			si += 16
		}
	}
}
