package tensor

// useGemmAsm gates the AVX2+FMA assembly micro-kernels in gemm_amd64.s.
// Detected once at startup; requires FMA, AVX2, and OS-managed YMM state
// (OSXSAVE set and XCR0 reporting XMM+YMM enabled), so it is safe under
// virtualization and on pre-AVX hardware, where the pure-Go kernel runs
// instead.
var useGemmAsm = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	_, _, c1, _ := cpuidex(1, 0)
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be set by the OS.
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 {
		return false
	}
	const avx2Bit = 1 << 5
	_, b7, _, _ := cpuidex(7, 0)
	return b7&avx2Bit != 0
}

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the extended-state enable register.
func xgetbv0() (eax, edx uint32)

// gemm4x16 accumulates a 4×16 output tile over kc steps of K:
// o[r][0:16] += Σ_p a_r[p] * bp[16p:16p+16], with bp a packed p-major strip.
// kc must be ≥ 1; each o_r must have at least 16 addressable elements.
//
//go:noescape
func gemm4x16(kc int, a0, a1, a2, a3, bp, o0, o1, o2, o3 *float32)

// gemm1x16s accumulates one output row across ns consecutive 16-wide packed
// strips: o[16s+j] += Σ_p a[p] * bp[s·16·kc + 16p + j]. The per-element
// accumulation order (single accumulator, p ascending, fused multiply-add)
// matches gemm4x16 exactly, so leftover rows of a blocked GEMM computed with
// this kernel are bit-identical to rows inside a full 4-row group. kc and ns
// must be ≥ 1; o must have ns·16 addressable elements.
//
//go:noescape
func gemm1x16s(kc, ns int, a, bp, o *float32)

// dot8 returns the inner product of x[0:n] and y[0:n]; n must be a positive
// multiple of 8.
//
//go:noescape
func dot8(n int, x, y *float32) float32

// reluAsm clamps x[0:n] to max(v, 0) in place with mask semantics identical
// to Go's `if v <= 0 { v = 0 }` (NaN passes through, -0 becomes +0). n must
// be a positive multiple of 8.
//
//go:noescape
func reluAsm(n int, p *float32)

// addScalarReluAsm sets p[i] = max(p[i]+b, 0) in place for i in [0, n): the
// conv bias add and the ReLU clamp fused into one sweep, bit-identical to
// the scalar `v += b; if v <= 0 { v = 0 }`. n must be a positive multiple
// of 8.
//
//go:noescape
func addScalarReluAsm(n int, p *float32, b float32)

// packSignsAsm writes nwords uint64 sign masks: bit i of word w is set iff
// src[64w+i] < 0 (VCMPPS with the LT predicate, so -0/NaN pack as 0 exactly
// like the Go comparison). nwords must be ≥ 1.
//
//go:noescape
func packSignsAsm(nwords int, src *float32, dst *uint64)
