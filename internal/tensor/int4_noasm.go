//go:build !amd64

package tensor

func int4SignDotAsm(nw int, nib *byte, q *uint64) int32 {
	panic("tensor: int4SignDotAsm requires amd64")
}
