package tensor

import (
	"testing"
)

func TestConvGeomOutputDims(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if g.OutH() != 32 || g.OutW() != 32 {
		t.Fatalf("same-padding 3x3 stride 1 must preserve dims, got %dx%d", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 1, InH: 32, InW: 32, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	if g2.OutH() != 16 || g2.OutW() != 16 {
		t.Fatalf("2x2 stride-2 pool: got %dx%d", g2.OutH(), g2.OutW())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, StrideH: 1, StrideW: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation failure for kernel larger than input")
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no padding: cols must equal the input.
	g := ConvGeom{InC: 2, InH: 3, InW: 3, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	x := make([]float32, 2*3*3)
	for i := range x {
		x[i] = float32(i)
	}
	cols := New(2, 9)
	Im2Col(g, x, cols)
	for i := range x {
		if cols.Data[i] != x[i] {
			t.Fatalf("1x1 im2col must be identity; mismatch at %d", i)
		}
	}
}

func TestIm2ColKnownPatch(t *testing.T) {
	// 1 channel 3x3 input, 2x2 kernel stride 1: 4 output positions.
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	x := []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	cols := New(4, 4)
	Im2Col(g, x, cols)
	// Column 0 is the top-left patch [1 2 4 5] read kernel-row-major.
	want0 := []float32{1, 2, 4, 5}
	for r := 0; r < 4; r++ {
		if cols.At(r, 0) != want0[r] {
			t.Fatalf("patch 0 row %d = %v, want %v", r, cols.At(r, 0), want0[r])
		}
	}
	// Column 3 is the bottom-right patch [5 6 8 9].
	want3 := []float32{5, 6, 8, 9}
	for r := 0; r < 4; r++ {
		if cols.At(r, 3) != want3[r] {
			t.Fatalf("patch 3 row %d = %v, want %v", r, cols.At(r, 3), want3[r])
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	x := []float32{1, 2, 3, 4}
	cols := New(9, g.OutH()*g.OutW())
	cols.Fill(99) // ensure padding positions are actively zeroed
	Im2Col(g, x, cols)
	// Output position (0,0): kernel centered so that kh=0,kw=0 reads (-1,-1) → 0.
	if cols.At(0, 0) != 0 {
		t.Fatalf("padding position must be zero, got %v", cols.At(0, 0))
	}
	// Center tap (kh=1,kw=1) of output (0,0) reads input (0,0) = 1.
	if cols.At(4, 0) != 1 {
		t.Fatalf("center tap = %v, want 1", cols.At(4, 0))
	}
}

func TestConvViaIm2ColMatchesDirect(t *testing.T) {
	// Full convolution through im2col + matmul vs a naive direct loop.
	g := ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	rng := NewRNG(7)
	x := New(2, 5, 5)
	rng.FillNormal(x, 0, 1)
	outC := 4
	w := New(outC, 2, 3, 3)
	rng.KaimingConv(w)

	cols := New(2*3*3, g.OutH()*g.OutW())
	Im2Col(g, x.Data, cols)
	wmat := w.Reshape(outC, 2*3*3)
	y := MatMul(wmat, cols) // outC × (outH*outW)

	for oc := 0; oc < outC; oc++ {
		for oh := 0; oh < g.OutH(); oh++ {
			for ow := 0; ow < g.OutW(); ow++ {
				var want float64
				for ic := 0; ic < 2; ic++ {
					for kh := 0; kh < 3; kh++ {
						for kw := 0; kw < 3; kw++ {
							ih, iw := oh-1+kh, ow-1+kw
							if ih < 0 || ih >= 5 || iw < 0 || iw >= 5 {
								continue
							}
							want += float64(x.At(ic, ih, iw)) * float64(w.At(oc, ic, kh, kw))
						}
					}
				}
				got := float64(y.At(oc, oh*g.OutW()+ow))
				if !almostEq(got, want, 1e-4) {
					t.Fatalf("conv mismatch at oc=%d oh=%d ow=%d: %v vs %v", oc, oh, ow, got, want)
				}
			}
		}
	}
}

func TestCol2ImAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), c> == <x, Col2Im(c)> — the adjoint identity that makes
	// backprop through conv correct.
	g := ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	rng := NewRNG(8)
	x := New(2, 4, 4)
	rng.FillNormal(x, 0, 1)
	rows, colsN := 2*3*3, g.OutH()*g.OutW()
	c := New(rows, colsN)
	rng.FillNormal(c, 0, 1)

	xc := New(rows, colsN)
	Im2Col(g, x.Data, xc)
	lhs := float64(Dot(xc.Data, c.Data))

	dx := make([]float32, 2*4*4)
	Col2Im(g, c, dx)
	rhs := float64(Dot(x.Data, dx))

	if !almostEq(lhs, rhs, 1e-3) {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestCol2ImAccumulates(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	cols := New(4, 4)
	cols.Fill(1)
	dx := make([]float32, 9)
	Col2Im(g, cols, dx)
	// Center pixel (1,1) is covered by all four 2x2 patches.
	if dx[4] != 4 {
		t.Fatalf("center accumulation = %v, want 4", dx[4])
	}
	// Corner (0,0) is covered once.
	if dx[0] != 1 {
		t.Fatalf("corner accumulation = %v, want 1", dx[0])
	}
}
