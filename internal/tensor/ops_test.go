package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAddSubMul(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if got := Add(a, b).Data; got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data; got[1] != 10 {
		t.Fatalf("Mul = %v", got)
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(New(2), New(3))
}

func TestScaleAXPY(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	a.Scale(3)
	if a.Data[1] != 6 {
		t.Fatalf("Scale = %v", a.Data)
	}
	x := FromSlice([]float32{1, 1}, 2)
	a.AXPY(2, x)
	if a.Data[0] != 5 || a.Data[1] != 8 {
		t.Fatalf("AXPY = %v", a.Data)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	g := NewRNG(1)
	a := New(4, 4)
	g.FillNormal(a, 0, 1)
	eye := New(4, 4)
	for i := 0; i < 4; i++ {
		eye.Set(1, i, i)
	}
	c := MatMul(a, eye)
	for i := range a.Data {
		if !almostEq(float64(c.Data[i]), float64(a.Data[i]), 1e-6) {
			t.Fatal("A @ I != A")
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Large enough to cross matmulMinParallel; verify against the naive
	// triple loop.
	g := NewRNG(2)
	m, k, n := 37, 53, 41
	a, b := New(m, k), New(k, n)
	g.FillNormal(a, 0, 1)
	g.FillNormal(b, 0, 1)
	c := MatMul(a, b)
	for i := 0; i < m; i += 7 {
		for j := 0; j < n; j += 5 {
			var want float64
			for p := 0; p < k; p++ {
				want += float64(a.Data[i*k+p]) * float64(b.Data[p*n+j])
			}
			if !almostEq(float64(c.Data[i*n+j]), want, 1e-3) {
				t.Fatalf("MatMul[%d,%d] = %v, want %v", i, j, c.Data[i*n+j], want)
			}
		}
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	g := NewRNG(3)
	a, b := New(5, 8), New(6, 8)
	g.FillNormal(a, 0, 1)
	g.FillNormal(b, 0, 1)
	got := MatMulT(a, b)
	want := MatMul(a, Transpose(b))
	for i := range got.Data {
		if !almostEq(float64(got.Data[i]), float64(want.Data[i]), 1e-4) {
			t.Fatalf("MatMulT mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTransposeMatMulMatchesExplicit(t *testing.T) {
	g := NewRNG(4)
	a, b := New(7, 4), New(7, 5)
	g.FillNormal(a, 0, 1)
	g.FillNormal(b, 0, 1)
	got := TransposeMatMul(a, b)
	want := MatMul(Transpose(a), b)
	for i := range got.Data {
		if !almostEq(float64(got.Data[i]), float64(want.Data[i]), 1e-4) {
			t.Fatalf("TransposeMatMul mismatch at %d", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := NewRNG(5)
	a := New(3, 9)
	g.FillNormal(a, 0, 1)
	b := Transpose(Transpose(a))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("transpose twice must be identity")
		}
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	src := []float32{1, 2, 3, 4}
	dst := make([]float32, 4)
	Softmax(dst, src)
	var sum float64
	for _, v := range dst {
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax element out of (0,1): %v", v)
		}
		sum += float64(v)
	}
	if !almostEq(sum, 1, 1e-5) {
		t.Fatalf("softmax sum = %v", sum)
	}
	for i := 1; i < 4; i++ {
		if dst[i] <= dst[i-1] {
			t.Fatal("softmax must be monotone in logits")
		}
	}
}

func TestSoftmaxStabilityLargeLogits(t *testing.T) {
	src := []float32{1000, 1001, 999}
	dst := make([]float32, 3)
	Softmax(dst, src)
	for _, v := range dst {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflowed on large logits")
		}
	}
	if dst[1] < dst[0] || dst[0] < dst[2] {
		t.Fatal("ordering lost")
	}
}

func TestSoftmaxTemperatureFlattens(t *testing.T) {
	src := []float32{0, 4}
	hard := make([]float32, 2)
	soft := make([]float32, 2)
	SoftmaxT(hard, src, 1)
	SoftmaxT(soft, src, 10)
	if !(soft[0] > hard[0]) {
		t.Fatalf("high temperature must flatten: hard=%v soft=%v", hard, soft)
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float32{0, 0})
	if !almostEq(got, math.Log(2), 1e-9) {
		t.Fatalf("LogSumExp = %v", got)
	}
	// Stability check.
	got = LogSumExp([]float32{1e4, 1e4})
	if !almostEq(got, 1e4+math.Log(2), 1e-3) {
		t.Fatalf("LogSumExp large = %v", got)
	}
}

func TestArgmaxRows(t *testing.T) {
	x := FromSlice([]float32{1, 5, 2, 9, 3, 1}, 2, 3)
	got := ArgmaxRows(x)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows = %v", got)
	}
}

func TestSignConvention(t *testing.T) {
	x := FromSlice([]float32{-2, 0, 3}, 3)
	s := Sign(x)
	if s.Data[0] != -1 || s.Data[1] != 1 || s.Data[2] != 1 {
		t.Fatalf("Sign = %v (zero must map to +1)", s.Data)
	}
}

// Property: softmax output always sums to 1 and is a valid distribution.
func TestSoftmaxDistributionProperty(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		src := make([]float32, len(raw))
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return true // skip degenerate inputs
			}
			// keep logits in a sane range to mimic real similarity scores
			src[i] = float32(math.Mod(float64(v), 50))
		}
		dst := make([]float32, len(src))
		Softmax(dst, src)
		var sum float64
		for _, v := range dst {
			if v < 0 {
				return false
			}
			sum += float64(v)
		}
		return almostEq(sum, 1, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A@B)ᵀ == Bᵀ@Aᵀ for random small matrices.
func TestMatMulTransposeIdentityProperty(t *testing.T) {
	g := NewRNG(6)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+g.Intn(6), 1+g.Intn(6), 1+g.Intn(6)
		a, b := New(m, k), New(k, n)
		g.FillNormal(a, 0, 1)
		g.FillNormal(b, 0, 1)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		for i := range lhs.Data {
			if !almostEq(float64(lhs.Data[i]), float64(rhs.Data[i]), 1e-4) {
				t.Fatalf("(AB)ᵀ != BᵀAᵀ at trial %d", trial)
			}
		}
	}
}
