package tensor

import "testing"

// TestBipolarGenSliceCols: a sliced generator reproduces exactly the parent's
// column range through every access path — element, tile, full fill, strip
// fill — including word-unaligned offsets and slices of slices.
func TestBipolarGenSliceCols(t *testing.T) {
	const rows, cols = 23, 533
	g := NewBipolarGen(1234, rows, cols)
	full := New(rows, cols)
	g.FillInto(full)

	for _, rng := range [][2]int{{0, 533}, {0, 256}, {256, 512}, {512, 533}, {5, 133}, {67, 200}, {63, 65}, {128, 384}} {
		lo, hi := rng[0], rng[1]
		s := g.SliceCols(lo, hi)
		w := hi - lo
		if s.Rows != rows || s.Cols != w {
			t.Fatalf("slice [%d,%d) dims [%d,%d]", lo, hi, s.Rows, s.Cols)
		}
		sub := New(rows, w)
		s.FillInto(sub)
		for r := 0; r < rows; r++ {
			for c := 0; c < w; c++ {
				if sub.Data[r*w+c] != full.Data[r*cols+lo+c] {
					t.Fatalf("slice [%d,%d) fill mismatch at (%d,%d)", lo, hi, r, c)
				}
			}
		}
		if s.at(7%rows, w/2) != full.Data[(7%rows)*cols+lo+w/2] {
			t.Fatalf("slice [%d,%d) element access mismatch", lo, hi)
		}
		// Unaligned interior tile of the slice.
		r0, r1 := 2, rows-3
		c0, c1 := 1, w-1
		if c1 <= c0 {
			c0, c1 = 0, w
		}
		ld := c1 - c0
		tile := make([]float32, (r1-r0)*ld)
		s.FillTile(tile, ld, r0, r1, c0, c1)
		for r := r0; r < r1; r++ {
			for c := c0; c < c1; c++ {
				if tile[(r-r0)*ld+(c-c0)] != full.Data[r*cols+lo+c] {
					t.Fatalf("slice [%d,%d) tile mismatch at (%d,%d)", lo, hi, r, c)
				}
			}
		}
		// Strip fill in slice coordinates vs packPanel16 of the materialized slice.
		jEnd := w / 16 * 16
		if jEnd > 0 {
			kc := s.Rows
			want := make([]float32, kc*jEnd)
			packPanel16(want, sub.Data, w, 0, kc, 0, jEnd)
			got := make([]float32, kc*jEnd)
			s.fillStrips(got, 0, kc, 0, jEnd)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("slice [%d,%d) strip mismatch at %d", lo, hi, i)
				}
			}
		}
	}

	// Slices compose: (g[67:400])[10:100] == g[77:167].
	inner := g.SliceCols(67, 400).SliceCols(10, 100)
	direct := g.SliceCols(77, 167)
	a := New(rows, 90)
	b := New(rows, 90)
	inner.FillInto(a)
	direct.FillInto(b)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("slice-of-slice mismatch at %d", i)
		}
	}
}

// TestPanelsSlicedRematMatchesFullColumns: a remat panel GEMM over a
// 256-aligned generator slice is bit-identical to the corresponding column
// block of the full product — the property CompileShard's remat tail rests
// on. Includes a ragged last shard.
func TestPanelsSlicedRematMatchesFullColumns(t *testing.T) {
	const m, k, n = 6, 100, 789 // 3 blocks + ragged 21-col tail
	gen := NewBipolarGen(77, k, n)
	a := New(m, k)
	NewRNG(13).FillNormal(a, 0, 1)
	scratch := make([]float32, PanelScratch())

	want := New(m, n)
	MatMulPanelsInto(want, a, RematPanels(gen), scratch)

	for _, rng := range [][2]int{{0, 256}, {256, 512}, {512, 789}, {0, 789}, {256, 789}} {
		lo, hi := rng[0], rng[1]
		w := hi - lo
		got := New(m, w)
		MatMulPanelsInto(got, a, RematPanels(gen.SliceCols(lo, hi)), scratch)
		for i := 0; i < m; i++ {
			for j := 0; j < w; j++ {
				if got.Data[i*w+j] != want.Data[i*n+lo+j] {
					t.Fatalf("sliced remat [%d,%d) differs at (%d,%d)", lo, hi, i, j)
				}
			}
		}
	}
}

// TestTensorSliceCols: the contiguous column-copy helper.
func TestTensorSliceCols(t *testing.T) {
	src := New(4, 10)
	for i := range src.Data {
		src.Data[i] = float32(i)
	}
	s := SliceCols(src, 3, 7)
	if s.Shape[0] != 4 || s.Shape[1] != 4 {
		t.Fatalf("shape %v", s.Shape)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if s.Data[r*4+c] != src.Data[r*10+3+c] {
				t.Fatalf("mismatch at (%d,%d)", r, c)
			}
		}
	}
	s.Data[0] = -1
	if src.Data[3] == -1 {
		t.Fatal("SliceCols must copy, not alias")
	}
}
