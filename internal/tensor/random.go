package tensor

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the initializers used across NSHD. All randomness
// in the repository flows through seeded RNGs so every experiment is
// reproducible.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Fork returns a new RNG seeded from this one, so that independent
// subsystems can draw without interleaving each other's streams.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// FillUniform fills t with uniform samples in [lo, hi).
func (g *RNG) FillUniform(t *Tensor, lo, hi float32) {
	span := float64(hi - lo)
	for i := range t.Data {
		t.Data[i] = lo + float32(g.r.Float64()*span)
	}
}

// FillNormal fills t with N(mean, std²) samples.
func (g *RNG) FillNormal(t *Tensor, mean, std float32) {
	for i := range t.Data {
		t.Data[i] = mean + std*float32(g.r.NormFloat64())
	}
}

// FillBipolar fills t with uniform ±1 samples (the hypervector alphabet).
func (g *RNG) FillBipolar(t *Tensor) {
	for i := range t.Data {
		if g.r.Int63()&1 == 0 {
			t.Data[i] = 1
		} else {
			t.Data[i] = -1
		}
	}
}

// KaimingConv initializes a convolution weight tensor of shape
// [outC, inC, kh, kw] with He-normal scaling appropriate for ReLU networks.
func (g *RNG) KaimingConv(w *Tensor) {
	if w.Rank() != 4 {
		panic("tensor: KaimingConv requires rank-4 weights")
	}
	fanIn := w.Shape[1] * w.Shape[2] * w.Shape[3]
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	g.FillNormal(w, 0, std)
}

// XavierLinear initializes a linear weight tensor of shape [out, in] with
// Glorot-uniform scaling.
func (g *RNG) XavierLinear(w *Tensor) {
	if w.Rank() != 2 {
		panic("tensor: XavierLinear requires rank-2 weights")
	}
	fanIn, fanOut := w.Shape[1], w.Shape[0]
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	g.FillUniform(w, -limit, limit)
}
