//go:build !amd64

package tensor

// Non-amd64 builds always use the portable blocked int8 kernel.
const useInt8Asm = false

func gemmInt8_4x16(kq int, a0, a1, a2, a3 *int8, bp *uint8, o0, o1, o2, o3 *int32) {
	panic("tensor: gemmInt8_4x16 requires amd64")
}

func dotU8I8Asm(n int, x *uint8, w *int8) int32 {
	panic("tensor: dotU8I8Asm requires amd64")
}

func packQuad16Asm(kq, n int, b *uint8, buf *uint8) {
	panic("tensor: packQuad16Asm requires amd64")
}

func requantU8Asm(n int, acc *int32, dst *uint8, bias int32, scale float32, zero, lo, hi int32) {
	panic("tensor: requantU8Asm requires amd64")
}

func quantU8Asm(n int, src *float32, dst *uint8, inv float32, zero int32) {
	panic("tensor: quantU8Asm requires amd64")
}

func dequantU8Asm(n int, src *uint8, dst *float32, scale float32, zero int32) {
	panic("tensor: dequantU8Asm requires amd64")
}
