package tensor

import (
	"math/rand"
	"testing"
)

// TestConvMulRowsMatchesSerial pins the row-tiled implicit-GEMM conv
// bit-identical to ConvMulSerialInto across randomized geometry (stride,
// pad, kernel, image size, channels), randomized ragged tile splits
// (including single-row tiles, which make the halo larger than the tile for
// every kernel taller than the stride), and minimal input row windows.
// Each tile is checked both written into a compact tile buffer and written
// directly into the full map at its row offset.
func TestConvMulRowsMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		g := ConvGeom{
			InC:     1 + rng.Intn(5),
			InH:     3 + rng.Intn(15),
			InW:     3 + rng.Intn(15),
			KH:      1 + rng.Intn(4),
			KW:      1 + rng.Intn(4),
			StrideH: 1 + rng.Intn(3),
			StrideW: 1 + rng.Intn(3),
			PadH:    rng.Intn(3),
			PadW:    rng.Intn(3),
		}
		if g.Validate() != nil {
			continue
		}
		outC := 1 + rng.Intn(20)
		kdim := g.InC * g.KH * g.KW
		outH, outW := g.OutH(), g.OutW()
		nOut := outH * outW
		x := make([]float32, g.InC*g.InH*g.InW)
		for i := range x {
			x[i] = rng.Float32()*2 - 1
		}
		wmat := New(outC, kdim)
		for i := range wmat.Data {
			wmat.Data[i] = rng.Float32()*2 - 1
		}
		want := New(outC, nOut)
		ConvMulSerialInto(want, wmat, g, x, make([]float32, ConvGemmScratch()))

		scratch := make([]float32, ConvTileScratch(outC))
		direct := New(outC, nOut)
		for i := range direct.Data {
			direct.Data[i] = -999
		}
		for or0 := 0; or0 < outH; {
			or1 := min(or0+1+rng.Intn(outH), outH)
			rows := or1 - or0
			// Minimal input row window for conv rows [or0, or1).
			inLo := min(max(0, or0*g.StrideH-g.PadH), g.InH)
			inHi := min(g.InH, (or1-1)*g.StrideH-g.PadH+g.KH)
			inHi = max(inHi, inLo)
			win := make([]float32, g.InC*(inHi-inLo)*g.InW)
			for c := 0; c < g.InC; c++ {
				copy(win[c*(inHi-inLo)*g.InW:(c+1)*(inHi-inLo)*g.InW],
					x[(c*g.InH+inLo)*g.InW:(c*g.InH+inHi)*g.InW])
			}
			// Compact tile buffer.
			tile := make([]float32, outC*rows*outW)
			ConvMulRowsInto(tile, rows*outW, 0, wmat, g, win, inLo, inHi-inLo, or0, or1, scratch)
			for oc := 0; oc < outC; oc++ {
				for j := or0 * outW; j < or1*outW; j++ {
					if got, w := tile[oc*rows*outW+j-or0*outW], want.Data[oc*nOut+j]; got != w {
						t.Fatalf("trial %d g=%+v outC=%d tile rows [%d,%d): (%d,%d) = %v, want %v",
							trial, g, outC, or0, or1, oc, j, got, w)
					}
				}
			}
			// Direct full-map write at the tile's row offset.
			ConvMulRowsInto(direct.Data, nOut, or0*outW, wmat, g, win, inLo, inHi-inLo, or0, or1, scratch)
			or0 = or1
		}
		for i := range want.Data {
			if direct.Data[i] != want.Data[i] {
				t.Fatalf("trial %d g=%+v outC=%d direct element %d = %v, want %v",
					trial, g, outC, i, direct.Data[i], want.Data[i])
			}
		}
	}
}

// TestIm2ColU8RowsMatchesFull checks the windowed u8 generator against the
// matching region of Im2ColU8 over random geometries and row ranges.
func TestIm2ColU8RowsMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 40; trial++ {
		g := ConvGeom{
			InC:     1 + rng.Intn(4),
			InH:     3 + rng.Intn(12),
			InW:     3 + rng.Intn(12),
			KH:      1 + rng.Intn(4),
			KW:      1 + rng.Intn(4),
			StrideH: 1 + rng.Intn(3),
			StrideW: 1 + rng.Intn(3),
			PadH:    rng.Intn(3),
			PadW:    rng.Intn(3),
		}
		if g.Validate() != nil {
			continue
		}
		pad := uint8(rng.Intn(256))
		kdim := g.InC * g.KH * g.KW
		outH, outW := g.OutH(), g.OutW()
		nOut := outH * outW
		x := make([]uint8, g.InC*g.InH*g.InW)
		rng.Read(x)
		full := make([]uint8, kdim*nOut)
		Im2ColU8(g, x, full, pad)
		for or0 := 0; or0 < outH; {
			or1 := min(or0+1+rng.Intn(outH), outH)
			rows := or1 - or0
			inLo := min(max(0, or0*g.StrideH-g.PadH), g.InH)
			inHi := min(g.InH, (or1-1)*g.StrideH-g.PadH+g.KH)
			inHi = max(inHi, inLo)
			win := make([]uint8, g.InC*(inHi-inLo)*g.InW)
			for c := 0; c < g.InC; c++ {
				copy(win[c*(inHi-inLo)*g.InW:(c+1)*(inHi-inLo)*g.InW],
					x[(c*g.InH+inLo)*g.InW:(c*g.InH+inHi)*g.InW])
			}
			cols := make([]uint8, kdim*rows*outW)
			Im2ColU8Rows(g, win, inLo, inHi-inLo, cols, or0, or1, pad)
			for p := 0; p < kdim; p++ {
				for j := or0 * outW; j < or1*outW; j++ {
					if got, w := cols[p*rows*outW+j-or0*outW], full[p*nOut+j]; got != w {
						t.Fatalf("trial %d g=%+v rows [%d,%d): (%d,%d) = %d, want %d",
							trial, g, or0, or1, p, j, got, w)
					}
				}
			}
			or0 = or1
		}
	}
}
