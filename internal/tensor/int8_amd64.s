#include "textflag.h"

// func gemmInt8_4x16(kq int, a0, a1, a2, a3 *int8, bp *uint8, o0, o1, o2, o3 *int32)
//
// 4x16 register-tiled int8 micro-kernel. The packed strip stores, per K-quad,
// sixteen dwords: the four K bytes of each output column. One VPDPBUSD
// multiplies 32 u8·i8 byte pairs and accumulates the dword-wise sums into 8
// int32 lanes — so each K-quad step retires 128 multiply-adds from two
// 32-byte panel loads plus four 4-byte weight broadcasts. All arithmetic is
// exact (u8·i8 products summed 4-at-a-time into int32), so the result equals
// the scalar reference bit-for-bit.
TEXT ·gemmInt8_4x16(SB), NOSPLIT, $0-80
	MOVQ kq+0(FP), CX
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ bp+40(FP), SI
	MOVQ o0+48(FP), DI
	MOVQ o1+56(FP), DX
	MOVQ o2+64(FP), R12
	MOVQ o3+72(FP), R13

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

kloop:
	VMOVDQU (SI), Y8
	VMOVDQU 32(SI), Y9
	VPBROADCASTD (R8), Y10
	VPDPBUSD Y10, Y8, Y0
	VPDPBUSD Y10, Y9, Y1
	VPBROADCASTD (R9), Y11
	VPDPBUSD Y11, Y8, Y2
	VPDPBUSD Y11, Y9, Y3
	VPBROADCASTD (R10), Y10
	VPDPBUSD Y10, Y8, Y4
	VPDPBUSD Y10, Y9, Y5
	VPBROADCASTD (R11), Y11
	VPDPBUSD Y11, Y8, Y6
	VPDPBUSD Y11, Y9, Y7
	ADDQ $64, SI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JNE  kloop

	VPADDD (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	VPADDD 32(DI), Y1, Y1
	VMOVDQU Y1, 32(DI)
	VPADDD (DX), Y2, Y2
	VMOVDQU Y2, (DX)
	VPADDD 32(DX), Y3, Y3
	VMOVDQU Y3, 32(DX)
	VPADDD (R12), Y4, Y4
	VMOVDQU Y4, (R12)
	VPADDD 32(R12), Y5, Y5
	VMOVDQU Y5, 32(R12)
	VPADDD (R13), Y6, Y6
	VMOVDQU Y6, (R13)
	VPADDD 32(R13), Y7, Y7
	VMOVDQU Y7, 32(R13)
	VZEROUPPER
	RET

// func dotU8I8Asm(n int, x *uint8, w *int8) int32
//
// Inner product of a u8 vector against an i8 vector over n elements (n a
// positive multiple of 32), two independent VPDPBUSD accumulators to hide
// latency, then a horizontal int32 sum. Exact: each VPDPBUSD lane sums four
// u8·i8 products (max magnitude 4·255·128 < 2^31) before the int32 add.
TEXT ·dotU8I8Asm(SB), NOSPLIT, $0-28
	MOVQ n+0(FP), CX
	MOVQ x+8(FP), SI
	MOVQ w+16(FP), DI

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1

	MOVQ CX, BX
	ANDQ $-64, BX
	JEQ  tail32

loop64:
	VMOVDQU (SI), Y2
	VMOVDQU (DI), Y3
	VPDPBUSD Y3, Y2, Y0
	VMOVDQU 32(SI), Y4
	VMOVDQU 32(DI), Y5
	VPDPBUSD Y5, Y4, Y1
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $64, BX
	JNE  loop64

tail32:
	ANDQ $32, CX
	JEQ  reduce

	VMOVDQU (SI), Y2
	VMOVDQU (DI), Y3
	VPDPBUSD Y3, Y2, Y0

reduce:
	VPADDD Y1, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0
	VPHADDD X0, X0, X0
	VPHADDD X0, X0, X0
	VZEROUPPER
	MOVQ X0, AX
	MOVL AX, ret+24(FP)
	RET

// func packQuad16Asm(kq, n int, b *uint8, buf *uint8)
//
// Packs one 16-column strip of kq K-quads: for each quad, the four K-row
// bytes of every column are interleaved into one little-endian dword, 16
// dwords (64 bytes) per quad — the layout gemmInt8_4x16 consumes. The
// interleave is the classic 4x16 byte transpose: two rounds of punpck
// (bytes, then words) turn four 16-byte row fragments into four 16-byte
// groups of column quads. Replaces a scalar 4-store-per-column loop.
TEXT ·packQuad16Asm(SB), NOSPLIT, $0-32
	MOVQ kq+0(FP), CX
	MOVQ n+8(FP), DX
	MOVQ b+16(FP), SI
	MOVQ buf+24(FP), DI
	LEAQ (SI)(DX*1), R8
	LEAQ (SI)(DX*2), R9
	LEAQ (R8)(DX*2), R10
	MOVQ DX, R11
	SHLQ $2, R11

packloop:
	VMOVDQU (SI), X0
	VMOVDQU (R8), X1
	VMOVDQU (R9), X2
	VMOVDQU (R10), X3
	VPUNPCKLBW X1, X0, X4
	VPUNPCKHBW X1, X0, X5
	VPUNPCKLBW X3, X2, X6
	VPUNPCKHBW X3, X2, X7
	VPUNPCKLWD X6, X4, X8
	VPUNPCKHWD X6, X4, X9
	VPUNPCKLWD X7, X5, X10
	VPUNPCKHWD X7, X5, X11
	VMOVDQU X8, (DI)
	VMOVDQU X9, 16(DI)
	VMOVDQU X10, 32(DI)
	VMOVDQU X11, 48(DI)
	ADDQ R11, SI
	ADDQ R11, R8
	ADDQ R11, R9
	ADDQ R11, R10
	ADDQ $64, DI
	DECQ CX
	JNE  packloop
	RET

// func requantU8Asm(n int, acc *int32, dst *uint8, bias int32, scale float32, zero, lo, hi int32)
//
// Vector form of RequantizeU8Row over n elements (n a positive multiple of
// 8). Bit-identical to the scalar path: int32→float32 conversion and the
// float multiply both round to nearest even exactly as Go's, and
// round-half-away-from-zero is reproduced by adding copysign(0.5, v) then
// truncating toward zero (VCVTTPS2DQ) — the same "v±0.5 then int32()"
// sequence the scalar RoundAway performs.
TEXT ·requantU8Asm(SB), NOSPLIT, $0-44
	MOVQ n+0(FP), CX
	MOVQ acc+8(FP), SI
	MOVQ dst+16(FP), DI
	MOVL bias+24(FP), AX
	MOVQ AX, X2
	VPBROADCASTD X2, Y2
	VBROADCASTSS scale+28(FP), Y3
	MOVL zero+32(FP), AX
	MOVQ AX, X4
	VPBROADCASTD X4, Y4
	MOVL lo+36(FP), AX
	MOVQ AX, X5
	VPBROADCASTD X5, Y5
	MOVL hi+40(FP), AX
	MOVQ AX, X6
	VPBROADCASTD X6, Y6
	VPCMPEQD Y7, Y7, Y7
	VPSLLD $31, Y7, Y8
	VPSRLD $26, Y7, Y7
	VPSLLD $24, Y7, Y7
	SHRQ $3, CX

rqloop:
	VMOVDQU (SI), Y0
	VPADDD Y2, Y0, Y0
	VCVTDQ2PS Y0, Y0
	VMULPS Y3, Y0, Y0
	VPAND Y8, Y0, Y1
	VPOR Y7, Y1, Y1
	VADDPS Y1, Y0, Y0
	VCVTTPS2DQ Y0, Y0
	VPADDD Y4, Y0, Y0
	VPMAXSD Y5, Y0, Y0
	VPMINSD Y6, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPACKUSDW X1, X0, X0
	VPACKUSWB X0, X0, X0
	VMOVQ X0, (DI)
	ADDQ $32, SI
	ADDQ $8, DI
	DECQ CX
	JNE  rqloop
	VZEROUPPER
	RET

// func quantU8Asm(n int, src *float32, dst *uint8, inv float32, zero int32)
//
// Vector form of QuantizeU8 over n elements (n a positive multiple of 8):
// dst[i] = clamp(roundaway(src[i]*inv) + zero, 0, 255). Same rounding
// construction as requantU8Asm.
TEXT ·quantU8Asm(SB), NOSPLIT, $0-32
	MOVQ n+0(FP), CX
	MOVQ src+8(FP), SI
	MOVQ dst+16(FP), DI
	VBROADCASTSS inv+24(FP), Y3
	MOVL zero+28(FP), AX
	MOVQ AX, X4
	VPBROADCASTD X4, Y4
	VPCMPEQD Y7, Y7, Y7
	VPSLLD $31, Y7, Y8
	VPSRLD $24, Y7, Y6
	VPXOR Y5, Y5, Y5
	VPSRLD $26, Y7, Y7
	VPSLLD $24, Y7, Y7
	SHRQ $3, CX

qloop:
	VMOVUPS (SI), Y0
	VMULPS Y3, Y0, Y0
	VPAND Y8, Y0, Y1
	VPOR Y7, Y1, Y1
	VADDPS Y1, Y0, Y0
	VCVTTPS2DQ Y0, Y0
	VPADDD Y4, Y0, Y0
	VPMAXSD Y5, Y0, Y0
	VPMINSD Y6, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPACKUSDW X1, X0, X0
	VPACKUSWB X0, X0, X0
	VMOVQ X0, (DI)
	ADDQ $32, SI
	ADDQ $8, DI
	DECQ CX
	JNE  qloop
	VZEROUPPER
	RET

// func dequantU8Asm(n int, src *uint8, dst *float32, scale float32, zero int32)
//
// Vector form of DequantizeU8 over n elements (n a positive multiple of 8):
// dst[i] = scale * float32(int32(src[i]) - zero). Exact: |q-z| ≤ 255
// converts exactly and the multiply rounds identically to Go's.
TEXT ·dequantU8Asm(SB), NOSPLIT, $0-32
	MOVQ n+0(FP), CX
	MOVQ src+8(FP), SI
	MOVQ dst+16(FP), DI
	VBROADCASTSS scale+24(FP), Y3
	MOVL zero+28(FP), AX
	MOVQ AX, X4
	VPBROADCASTD X4, Y4
	SHRQ $3, CX

dqloop:
	VPMOVZXBD (SI), Y0
	VPSUBD Y4, Y0, Y0
	VCVTDQ2PS Y0, Y0
	VMULPS Y3, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ $8, SI
	ADDQ $32, DI
	DECQ CX
	JNE  dqloop
	VZEROUPPER
	RET
