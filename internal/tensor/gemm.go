package tensor

import (
	"fmt"
	"sync"

	"nshd/internal/parallel"
)

// Blocked GEMM. The kernel is organized BLIS-style:
//
//   - the N dimension is walked in gemmNC-column blocks and the K dimension
//     in gemmKC-row blocks, so the active B panel and the 4-row output slab
//     stay cache-resident while row blocks of A stream through;
//   - on amd64 with AVX2+FMA (detected at startup via CPUID), the B panel is
//     packed into 16-wide column strips stored p-major and the inner product
//     runs in a hand-written assembly micro-kernel: a 4×16 register tile held
//     in 8 YMM accumulators, 8 fused multiply-adds per K step — roughly an
//     order of magnitude more flops/cycle than scalar Go;
//   - elsewhere, a pure-Go broadcast-AXPY kernel processes 4 rows per pass,
//     quartering B traffic versus the seed's one-row-at-a-time loop (the
//     dense path also drops the seed kernel's per-element zero test, which
//     mispredicts on dense data).
//
// Parallelism splits over both M and N (tall-skinny shapes like similarity
// scoring keep all workers busy), with chunk sizes derived from per-row flop
// cost rather than a flat element-count cutoff. Tile boundaries are aligned
// to the micro-kernel (gemmMR rows, gemmNR cols), which — together with a
// fixed K-blocking schedule — makes results bit-identical no matter how the
// work is split: see TestMatMulSerialParallelIdentical.
const (
	gemmMR = 4   // rows of A per micro-kernel pass
	gemmNR = 16  // columns per packed strip (one AVX micro-kernel tile)
	gemmKC = 256 // K-dimension block
	gemmNC = 256 // N-dimension block (multiple of gemmNR)
)

// minParallelWork is the floor of per-task work (in elements touched or
// flops, per the call site) below which dispatch overhead would dominate;
// used by memory-bound ops like Transpose.
const minParallelWork = 1 << 15

// gemmMinParallelFlops is the flop floor per GEMM task. It is 8× the generic
// floor because the AVX2 kernel retires ~40 gflops single-threaded, so a
// task needs this many flops (~7 µs) to amortize one pool dispatch.
const gemmMinParallelFlops = 1 << 18

// panelPool recycles packed-B panel buffers across GEMM calls and workers.
var panelPool = sync.Pool{New: func() any {
	buf := make([]float32, gemmKC*gemmNC)
	return &buf
}}

// MatMulInto computes dst = a(M×K) @ b(K×N) with the blocked kernel.
// dst must be M×N and must not alias a or b. The result is deterministic:
// serial and parallel execution produce bit-identical output because tile
// decomposition never changes how any single element accumulates over K.
func MatMulInto(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v @ %v -> %v", a.Shape, b.Shape, dst.Shape))
	}
	gemm(dst.Data, a.Data, b.Data, m, n, k)
}

// MatMul returns a @ b for rank-2 tensors.
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.Shape[0], b.Shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulNaiveInto is the seed repository's i·p·j kernel (row-major AXPY with
// a zero-skip branch), kept serial as the reference implementation for
// correctness tests and before/after benchmarking. New code should call
// MatMulInto; callers multiplying a genuinely sparse LHS can use
// MatMulSparseInto.
func MatMulNaiveInto(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v @ %v -> %v", a.Shape, b.Shape, dst.Shape))
	}
	for i := 0; i < m; i++ {
		out := dst.Data[i*n : (i+1)*n]
		clear(out)
		arow := a.Data[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				out[j] += av * bv
			}
		}
	}
}

// MatMulSparseInto computes dst = a @ b skipping zero elements of a — the
// sparse-aware variant of the seed kernel, parallelized over rows. Use it
// only when a is known to be mostly zeros (e.g. masked update matrices);
// for dense inputs the branch costs more than it saves.
func MatMulSparseInto(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v @ %v -> %v", a.Shape, b.Shape, dst.Shape))
	}
	grain := rowGrain(n, k)
	parallel.ForGrain(m, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out := dst.Data[i*n : (i+1)*n]
			clear(out)
			arow := a.Data[i*k : (i+1)*k]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j, bv := range brow {
					out[j] += av * bv
				}
			}
		}
	})
}

// rowGrain returns how many rows one parallel task should cover so that each
// task performs at least gemmMinParallelFlops flops (2·n·k per row).
func rowGrain(n, k int) int {
	rowCost := 2 * n * k
	if rowCost <= 0 {
		return 1 << 30
	}
	g := (gemmMinParallelFlops + rowCost - 1) / rowCost
	if g < 1 {
		g = 1
	}
	return g
}

// gemmJob is one rectangular output tile of a parallel GEMM.
type gemmJob struct {
	r0, r1, c0, c1 int
}

// gemmSplit decomposes an M×N output into jobs for the given worker count.
// Rows are split first (better packing reuse); when row chunks alone cannot
// feed every worker — small M with large N, e.g. per-sample conv matmuls —
// columns are split too. Splits are aligned to gemmMR rows and gemmNR
// columns so every element is computed by the same micro-kernel regardless
// of the decomposition. Pure function, unit-tested for boundary coverage.
func gemmSplit(m, n, k, workers int) []gemmJob {
	rowsPer := rowGrain(n, k)
	if rowsPer%gemmMR != 0 {
		rowsPer += gemmMR - rowsPer%gemmMR
	}
	rowTasks := (m + rowsPer - 1) / rowsPer
	if rowTasks > workers*2 {
		rowTasks = workers * 2
		rowsPer = (m + rowTasks - 1) / rowTasks
		if rowsPer%gemmMR != 0 {
			rowsPer += gemmMR - rowsPer%gemmMR
		}
	}
	colTasks := 1
	if rowTasks < workers && n >= 2*gemmNR {
		colTasks = (workers + rowTasks - 1) / rowTasks
		if maxCols := n / gemmNR; colTasks > maxCols {
			colTasks = maxCols
		}
	}
	colsPer := (n + colTasks - 1) / colTasks
	if colsPer%gemmNR != 0 {
		colsPer += gemmNR - colsPer%gemmNR
	}
	var jobs []gemmJob
	for r0 := 0; r0 < m; r0 += rowsPer {
		r1 := r0 + rowsPer
		if r1 > m {
			r1 = m
		}
		for c0 := 0; c0 < n; c0 += colsPer {
			c1 := c0 + colsPer
			if c1 > n {
				c1 = n
			}
			jobs = append(jobs, gemmJob{r0, r1, c0, c1})
		}
	}
	return jobs
}

func gemm(dst, a, b []float32, m, n, k int) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		clear(dst[:m*n])
		return
	}
	workers := parallel.Workers()
	if workers <= 1 || 2*m*n*k < 2*gemmMinParallelFlops {
		gemmRange(dst, a, b, n, k, 0, m, 0, n)
		return
	}
	jobs := gemmSplit(m, n, k, workers)
	parallel.For(len(jobs), func(lo, hi int) {
		for ji := lo; ji < hi; ji++ {
			j := jobs[ji]
			gemmRange(dst, a, b, n, k, j.r0, j.r1, j.c0, j.c1)
		}
	})
}

// gemmRange computes the dst tile rows [r0,r1) × cols [c0,c1), overwriting it.
// The packed-B panel comes from panelPool; callers that must not touch the
// heap (the serving engine) use gemmRangeScratch with their own buffer.
func gemmRange(dst, a, b []float32, n, k, r0, r1, c0, c1 int) {
	var buf []float32
	var bufp *[]float32
	if useGemmAsm {
		bufp = panelPool.Get().(*[]float32)
		buf = *bufp
		defer panelPool.Put(bufp)
	}
	gemmRangeScratch(dst, a, b, buf, n, k, r0, r1, c0, c1)
}

// gemmRangeScratch is gemmRange with a caller-owned packed-panel buffer
// (length ≥ GemmScratch(); ignored on the pure-Go path). It runs the exact
// same tile schedule as gemmRange, so results are bit-identical.
func gemmRangeScratch(dst, a, b, buf []float32, n, k, r0, r1, c0, c1 int) {
	for i := r0; i < r1; i++ {
		clear(dst[i*n+c0 : i*n+c1])
	}
	for jb := c0; jb < c1; jb += gemmNC {
		je := jb + gemmNC
		if je > c1 {
			je = c1
		}
		for pb := 0; pb < k; pb += gemmKC {
			pe := pb + gemmKC
			if pe > k {
				pe = k
			}
			if useGemmAsm {
				gemmAsmPart(dst, a, b, buf, n, k, r0, r1, jb, je, pb, pe)
			} else {
				gemmGoPart(dst, a, b, n, k, r0, r1, jb, je, pb, pe)
			}
		}
	}
}

// gemmAsmPart computes rows [r0,r1) × cols [jb,je) of the K-block [pb,pe)
// using the AVX2 micro-kernel over a packed panel for all full 4×16 tiles,
// the 1×16 strip kernel for leftover rows, and the scalar kernel for the
// ragged column tail.
func gemmAsmPart(dst, a, b, buf []float32, n, k, r0, r1, jb, je, pb, pe int) {
	kc := pe - pb
	nFull := (je - jb) / gemmNR * gemmNR
	if nFull > 0 {
		packPanel16(buf, b, n, pb, pe, jb, jb+nFull)
		i := r0
		for ; i+gemmMR <= r1; i += gemmMR {
			for js := 0; js < nFull; js += gemmNR {
				strip := buf[js*kc:]
				gemm4x16(kc,
					&a[i*k+pb], &a[(i+1)*k+pb], &a[(i+2)*k+pb], &a[(i+3)*k+pb],
					&strip[0],
					&dst[i*n+jb+js], &dst[(i+1)*n+jb+js], &dst[(i+2)*n+jb+js], &dst[(i+3)*n+jb+js])
			}
		}
		// Leftover rows (and the whole of a skinny M < 4 product, e.g.
		// batch-1 serving GEMMs) run through the 1×16 strip kernel over the
		// already-packed panel instead of the scalar tail, which both reuses
		// the pack work and keeps their accumulation order identical to rows
		// inside a full 4-row group.
		for ; i < r1; i++ {
			gemm1x16s(kc, nFull/gemmNR, &a[i*k+pb], &buf[0], &dst[i*n+jb])
		}
	}
	if jb+nFull < je {
		gemmGoPart(dst, a, b, n, k, r0, r1, jb+nFull, je, pb, pe)
	}
}

// packPanel16 copies B rows [pb,pe) × cols [jb,jfullEnd) — a whole number of
// 16-column strips — into buf, strip-major then p-major, so the micro-kernel
// reads the panel strictly sequentially.
func packPanel16(buf, b []float32, n, pb, pe, jb, jfullEnd int) {
	si := 0
	for js := jb; js < jfullEnd; js += gemmNR {
		for p := pb; p < pe; p++ {
			copy(buf[si:si+gemmNR], b[p*n+js:][:gemmNR])
			si += gemmNR
		}
	}
}

// gemmGoPart is the portable kernel: a 4-row broadcast-AXPY over contiguous
// B row segments. Each B element loaded once serves four output rows, and
// the NC blocking keeps the four active output segments L1-resident.
func gemmGoPart(dst, a, b []float32, n, k, r0, r1, jb, je, pb, pe int) {
	i := r0
	for ; i+gemmMR <= r1; i += gemmMR {
		o0 := dst[i*n+jb : i*n+je]
		o1 := dst[(i+1)*n+jb : (i+1)*n+je]
		o2 := dst[(i+2)*n+jb : (i+2)*n+je]
		o3 := dst[(i+3)*n+jb : (i+3)*n+je]
		for p := pb; p < pe; p++ {
			brow := b[p*n+jb : p*n+je]
			axpy4(a[i*k+p], a[(i+1)*k+p], a[(i+2)*k+p], a[(i+3)*k+p], brow, o0, o1, o2, o3)
		}
	}
	for ; i < r1; i++ {
		o0 := dst[i*n+jb : i*n+je]
		for p := pb; p < pe; p++ {
			axpy1(a[i*k+p], b[p*n+jb:p*n+je], o0)
		}
	}
}

// axpy4 computes o_r += av_r * brow for four rows, reusing each loaded B
// element four times.
func axpy4(av0, av1, av2, av3 float32, brow, o0, o1, o2, o3 []float32) {
	o0 = o0[:len(brow)]
	o1 = o1[:len(brow)]
	o2 = o2[:len(brow)]
	o3 = o3[:len(brow)]
	for j, bv := range brow {
		o0[j] += av0 * bv
		o1[j] += av1 * bv
		o2[j] += av2 * bv
		o3[j] += av3 * bv
	}
}

func axpy1(av float32, brow, o0 []float32) {
	o0 = o0[:len(brow)]
	for j, bv := range brow {
		o0[j] += av * bv
	}
}

// GemmScratch returns the packed-panel buffer length (in float32 elements)
// that MatMulSerialInto needs; zero on targets without the asm micro-kernel.
func GemmScratch() int {
	if useGemmAsm {
		return gemmKC * gemmNC
	}
	return 0
}

// MatMulSerialInto computes dst = a(M×K) @ b(K×N) strictly on the calling
// goroutine with caller-owned panel scratch (length ≥ GemmScratch(); nil is
// accepted when GemmScratch() == 0). It performs no heap allocation and no
// pool dispatch, and — because it runs the same fixed tile schedule as the
// parallel kernel — its results are bit-identical to MatMulInto. This is the
// serving engine's GEMM: the engine parallelizes across batch chunks, so each
// chunk's GEMM must stay on its worker.
func MatMulSerialInto(dst, a, b *Tensor, scratch []float32) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v @ %v -> %v", a.Shape, b.Shape, dst.Shape))
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		clear(dst.Data[:m*n])
		return
	}
	if useGemmAsm && len(scratch) < gemmKC*gemmNC {
		panic(fmt.Sprintf("tensor: MatMulSerialInto scratch %d < GemmScratch %d", len(scratch), gemmKC*gemmNC))
	}
	gemmRangeScratch(dst.Data, a.Data, b.Data, scratch, n, k, 0, m, 0, n)
}

// MatMulTSerialInto computes dst = a(M×K) @ bᵀ (b is N×K) on the calling
// goroutine with zero allocations, using the same dot kernel as MatMulT so
// results are bit-identical to the parallel path.
func MatMulTSerialInto(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulT shape mismatch %v @ %vᵀ", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulT dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		clear(dst.Data[:m*n])
		return
	}
	matMulTRange(dst.Data, a.Data, b.Data, n, k, 0, m)
}

// DotFast returns the inner product of x and y through the same kernel
// MatMulT uses (AVX2 when available, scalar otherwise), so scores computed
// one vector at a time match batched similarity scores bit-for-bit.
func DotFast(x, y []float32) float32 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	if useGemmAsm {
		return dotAsm(x, y)
	}
	return Dot(x, y)
}

// MatMulT returns a(M×K) @ bᵀ where b is N×K — the layout used for similarity
// of a query batch against class hypervectors. Both operands are K-contiguous;
// each output element accumulates over the full K range independently, which
// keeps results identical for any parallel row split.
func MatMulT(a, b *Tensor) *Tensor {
	out := New(a.Shape[0], b.Shape[0])
	MatMulTInto(out, a, b)
	return out
}

// MatMulTInto computes dst = a(M×K) @ bᵀ (b is N×K) into a caller-owned dst,
// so batched training loops can reuse one similarity buffer across steps. It
// runs the same row-parallel dot kernel as MatMulT; results are bit-identical.
func MatMulTInto(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulT shape mismatch %v @ %vᵀ", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulT dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		clear(dst.Data[:m*n])
		return
	}
	grain := rowGrain(n, k)
	parallel.ForGrain(m, grain, func(lo, hi int) {
		matMulTRange(dst.Data, a.Data, b.Data, n, k, lo, hi)
	})
}

// MatMulTAccSerial accumulates dst += a(M×K) @ bᵀ (b is N×K) strictly on the
// calling goroutine. This is the weight-gradient shape of a GEMM-ified
// backward pass — dW += g @ colsᵀ with both operands contiguous along the
// reduction axis — run through the same vectorized dot kernel as MatMulT, so
// per-worker gradient accumulators stay deterministic: the accumulation order
// over K never depends on how the batch was split.
func MatMulTAccSerial(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTAcc shape mismatch %v @ %vᵀ", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTAcc dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	if k == 0 {
		return
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k:][:k]
		drow := dst.Data[i*n:][:n]
		for j := 0; j < n; j++ {
			drow[j] += DotFast(arow, b.Data[j*k:][:k])
		}
	}
}

func matMulTRange(dst, a, b []float32, n, k, r0, r1 int) {
	if useGemmAsm {
		for i := r0; i < r1; i++ {
			arow := a[i*k:][:k]
			for j := 0; j < n; j++ {
				dst[i*n+j] = dotAsm(arow, b[j*k:][:k])
			}
		}
		return
	}
	for i := r0; i < r1; i++ {
		arow := a[i*k:][:k]
		for j := 0; j < n; j++ {
			dst[i*n+j] = Dot(arow, b[j*k:][:k])
		}
	}
}

// dotAsm computes an inner product with the AVX2 kernel, falling back to the
// scalar Dot below the vector width.
func dotAsm(x, y []float32) float32 {
	k := len(x)
	wide := k / 8 * 8
	var s float32
	if wide > 0 {
		s = dot8(wide, &x[0], &y[0])
	}
	for p := wide; p < k; p++ {
		s += x[p] * y[p]
	}
	return s
}
