#include "textflag.h"

// Constants for int4SignDotAsm. VPSHUFB indexes within 128-bit lanes and
// VPBROADCASTQ replicates the query word into both lanes, so the lo shuffle
// spreads query bytes 0..3 (bits 0..31) and the hi shuffle bytes 4..7
// (bits 32..63), eight copies each — one per bit-select byte.
DATA int4ShufLo<>+0(SB)/8, $0x0000000000000000
DATA int4ShufLo<>+8(SB)/8, $0x0101010101010101
DATA int4ShufLo<>+16(SB)/8, $0x0202020202020202
DATA int4ShufLo<>+24(SB)/8, $0x0303030303030303
GLOBL int4ShufLo<>(SB), RODATA|NOPTR, $32

DATA int4ShufHi<>+0(SB)/8, $0x0404040404040404
DATA int4ShufHi<>+8(SB)/8, $0x0505050505050505
DATA int4ShufHi<>+16(SB)/8, $0x0606060606060606
DATA int4ShufHi<>+24(SB)/8, $0x0707070707070707
GLOBL int4ShufHi<>(SB), RODATA|NOPTR, $32

DATA int4BitSel<>+0(SB)/8, $0x8040201008040201
DATA int4BitSel<>+8(SB)/8, $0x8040201008040201
DATA int4BitSel<>+16(SB)/8, $0x8040201008040201
DATA int4BitSel<>+24(SB)/8, $0x8040201008040201
GLOBL int4BitSel<>(SB), RODATA|NOPTR, $32

DATA int4Nib<>+0(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA int4Nib<>+8(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA int4Nib<>+16(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA int4Nib<>+24(SB)/8, $0x0F0F0F0F0F0F0F0F
GLOBL int4Nib<>(SB), RODATA|NOPTR, $32

DATA int4Eight<>+0(SB)/8, $0x0808080808080808
DATA int4Eight<>+8(SB)/8, $0x0808080808080808
DATA int4Eight<>+16(SB)/8, $0x0808080808080808
DATA int4Eight<>+24(SB)/8, $0x0808080808080808
GLOBL int4Eight<>(SB), RODATA|NOPTR, $32

DATA int4Ones<>+0(SB)/8, $0x0001000100010001
DATA int4Ones<>+8(SB)/8, $0x0001000100010001
DATA int4Ones<>+16(SB)/8, $0x0001000100010001
DATA int4Ones<>+24(SB)/8, $0x0001000100010001
GLOBL int4Ones<>(SB), RODATA|NOPTR, $32

// func int4SignDotAsm(nw int, nib *byte, q *uint64) int32
//
// One packed int4 row against one sign-packed bipolar query, 64 dimensions
// per iteration: the query word is broadcast and expanded into two 32-byte
// ±select masks (0xFF where the query dimension is −1), the 32 packed bytes
// are split into the lo/hi nibble planes and re-biased to [−8, 7]... the
// stored offset is +8 so values land in [−7, 7], and each plane is
// conditionally negated with the xor-subtract identity (x ⊕ m) − m before
// sign-extending into two int16 accumulators. Exact integer arithmetic
// throughout; int16 lanes bound the row dimension to < 2^17 (each lane
// absorbs ≤ 16 per group). Padding nibbles encode 0 and query tail bits are
// zero, so ragged rows need no masking.
TEXT ·int4SignDotAsm(SB), NOSPLIT, $0-28
	MOVQ nw+0(FP), CX
	MOVQ nib+8(FP), DI
	MOVQ q+16(FP), SI

	VMOVDQU int4ShufLo<>(SB), Y8
	VMOVDQU int4ShufHi<>(SB), Y9
	VMOVDQU int4BitSel<>(SB), Y10
	VMOVDQU int4Nib<>(SB), Y11
	VMOVDQU int4Eight<>(SB), Y3
	VPXOR Y12, Y12, Y12 // lo-plane int16 accumulator
	VPXOR Y13, Y13, Y13 // hi-plane int16 accumulator

gloop:
	VPBROADCASTQ (SI), Y4
	VPSHUFB Y8, Y4, Y5
	VPAND Y10, Y5, Y5
	VPCMPEQB Y10, Y5, Y5 // maskLo: 0xFF where query bit 0..31 set
	VPSHUFB Y9, Y4, Y6
	VPAND Y10, Y6, Y6
	VPCMPEQB Y10, Y6, Y6 // maskHi: 0xFF where query bit 32..63 set

	VMOVDQU (DI), Y7
	VPAND Y11, Y7, Y0 // lo nibbles
	VPSUBB Y3, Y0, Y0 // − offset → [−7, 7]
	VPSRLW $4, Y7, Y1
	VPAND Y11, Y1, Y1 // hi nibbles
	VPSUBB Y3, Y1, Y1

	VPXOR Y5, Y0, Y0
	VPSUBB Y5, Y0, Y0 // negate lo plane where the query is −1
	VPXOR Y6, Y1, Y1
	VPSUBB Y6, Y1, Y1 // negate hi plane

	VPMOVSXBW X0, Y2
	VPADDW Y2, Y12, Y12
	VEXTRACTI128 $1, Y0, X2
	VPMOVSXBW X2, Y2
	VPADDW Y2, Y12, Y12
	VPMOVSXBW X1, Y2
	VPADDW Y2, Y13, Y13
	VEXTRACTI128 $1, Y1, X2
	VPMOVSXBW X2, Y2
	VPADDW Y2, Y13, Y13

	ADDQ $8, SI
	ADDQ $32, DI
	DECQ CX
	JNE  gloop

	VPADDW Y13, Y12, Y12
	VMOVDQU int4Ones<>(SB), Y2
	VPMADDWD Y2, Y12, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0
	VPHADDD X0, X0, X0
	VPHADDD X0, X0, X0
	VZEROUPPER
	MOVQ X0, AX
	MOVL AX, ret+24(FP)
	RET
