package tensor

// PackSignsInto packs the signs of row into words: bit i is set iff
// row[i] < 0 (so -0, +0 and NaN all pack as "non-negative"). words must hold
// (len(row)+63)/64 entries; tail bits of the last word are written zero.
// On amd64 with AVX2 the full words go through an assembly kernel that
// extracts 8 sign-compare bits per instruction (VCMPPS + VMOVMSKPS), which
// makes bit-packing whole query batches cheap relative to scoring them.
func PackSignsInto(words []uint64, row []float32) {
	nw := len(row) / 64
	if nw > 0 {
		_ = words[nw-1]
		if useGemmAsm {
			packSignsAsm(nw, &row[0], &words[0])
		} else {
			packSignsGeneric(words[:nw], row[:nw*64])
		}
	}
	if tail := len(row) % 64; tail != 0 {
		var bw uint64
		for b, v := range row[nw*64:] {
			if v < 0 {
				bw |= 1 << uint(b)
			}
		}
		words[nw] = bw
	}
}

func packSignsGeneric(words []uint64, row []float32) {
	for w := range words {
		var bw uint64
		for b, v := range row[w*64 : w*64+64] {
			if v < 0 {
				bw |= 1 << uint(b)
			}
		}
		words[w] = bw
	}
}
