package tensor

import "fmt"

// QTensor is a quantized activation tensor: unsigned-int8 storage plus the
// affine mapping back to real values,
//
//	real = Scale * (float32(q) - float32(Zero))
//
// Scale and Zero travel with the data so every consumer — the next quantized
// layer, a dequantize exit, a pooling kernel that passes values through —
// interprets the bytes identically. Weights are NOT QTensors: they are
// signed-int8 with per-output-channel scales and live inside their layer.
type QTensor struct {
	Data  []uint8
	Shape []int
	Scale float32
	Zero  uint8
}

// Len returns the number of elements implied by the shape.
func (q *QTensor) Len() int {
	n := 1
	for _, s := range q.Shape {
		n *= s
	}
	return n
}

// Rank returns the number of dimensions.
func (q *QTensor) Rank() int { return len(q.Shape) }

// NewQTensor returns a heap-backed zeroed QTensor (tests and one-off use;
// the serving path allocates from an Arena).
func NewQTensor(scale float32, zero uint8, shape ...int) *QTensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic("tensor: negative dimension in NewQTensor")
		}
		n *= s
	}
	return &QTensor{Data: make([]uint8, n), Shape: append([]int(nil), shape...), Scale: scale, Zero: zero}
}

// QuantizeTensor quantizes t into a fresh heap-backed QTensor with the given
// parameters (calibration-time helper; serving uses arena buffers).
func QuantizeTensor(t *Tensor, scale float32, zero uint8) *QTensor {
	q := NewQTensor(scale, zero, t.Shape...)
	QuantizeU8(q.Data, t.Data, scale, zero)
	return q
}

// DequantizeTensor expands q into a fresh float tensor.
func DequantizeTensor(q *QTensor) *Tensor {
	t := New(q.Shape...)
	DequantizeU8(t.Data, q.Data, q.Scale, q.Zero)
	return t
}

func (q *QTensor) String() string {
	return fmt.Sprintf("QTensor%v scale=%g zero=%d", q.Shape, q.Scale, q.Zero)
}
