package tensor

import "fmt"

// Panel-fed GEMM: the serving engine's fused-tail kernel. A ProjPanels holds
// the right-hand matrix of a projection GEMM in the exact form the blocked
// kernel consumes — either prepacked once at compile time (so the per-call
// packPanel16 pass disappears; at batch 1 that pass dominates the whole
// product) or defined by a seeded BipolarGen whose panels are rematerialized
// into scratch inside the K-loop (so the matrix is never stored at all and
// the kernel turns from bandwidth-bound streaming into pure compute).
//
// MatMulPanelsBlock computes one gemmNC-wide column block of a @ B into a
// compact [m, w] tile, which is what lets the fused tail walk the D
// dimension block by block — packing sign bits or accumulating class scores
// per block — without ever materializing the full [N, D] product.
//
// Bit-exactness contract: for the same underlying matrix, every element
// produced here is bit-identical to MatMulSerialInto's output. The kernel
// runs the same KC/NC schedule, the same asm micro-kernel over the same
// strip layout, and Go fallback loops with the same per-element
// accumulation order over K (p strictly ascending within each K block, K
// blocks ascending). TestMatMulPanelsMatchesSerial pins this across shapes.

// PanelBlockCols returns the column-block width MatMulPanelsBlock computes
// per call (the GEMM's NC blocking); block offsets must be multiples of it.
func PanelBlockCols() int { return gemmNC }

// PanelScratch returns the float32 scratch length the panel kernels need:
// one packed-strip panel plus one dense column-tail tile.
func PanelScratch() int { return gemmKC*gemmNC + gemmKC*gemmNR }

// ProjPanels is a GEMM right-hand side in panel form. Exactly one backing is
// active: a seeded generator (rematerializing), prepacked strips (amd64 asm
// path), or a dense reference (portable path).
type ProjPanels struct {
	k, n int
	gen  *BipolarGen

	// Prepacked asm backing: strips holds cols [0, n16) (n16 = ⌊n/16⌋·16)
	// packed per (NC block, KC block) in packPanel16 layout; stripBase[b] is
	// the offset of NC block b. tail holds the ragged cols [n16, n) densely
	// with leading dimension n−n16.
	strips    []float32
	stripBase []int
	tail      []float32

	// Portable backing: the dense matrix itself (shared, not copied).
	dense []float32
}

// PrepackPanels converts a stored [K, N] matrix into panel form. On the asm
// path the strips are packed once, here, and every subsequent product skips
// the per-call packing pass; the portable path keeps a reference to b's data
// (same kernel, same traffic — prepacking buys nothing without strips).
// b must outlive the panels on the portable path.
func PrepackPanels(b *Tensor) *ProjPanels {
	if b.Rank() != 2 {
		panic("tensor: PrepackPanels requires a rank-2 tensor")
	}
	k, n := b.Shape[0], b.Shape[1]
	pp := &ProjPanels{k: k, n: n}
	if !useGemmAsm {
		pp.dense = b.Data
		return pp
	}
	n16 := n / 16 * 16
	pp.strips = make([]float32, k*n16)
	nBlocks := (n + gemmNC - 1) / gemmNC
	pp.stripBase = make([]int, nBlocks)
	off := 0
	for jb := 0; jb < n16; jb += gemmNC {
		w16 := gemmNC
		if jb+w16 > n16 {
			w16 = n16 - jb
		}
		pp.stripBase[jb/gemmNC] = off
		for pb := 0; pb < k; pb += gemmKC {
			pe := pb + gemmKC
			if pe > k {
				pe = k
			}
			packPanel16(pp.strips[off+pb*w16:], b.Data, n, pb, pe, jb, jb+w16)
		}
		off += k * w16
	}
	if n16 < n {
		tw := n - n16
		pp.tail = make([]float32, k*tw)
		for p := 0; p < k; p++ {
			copy(pp.tail[p*tw:(p+1)*tw], b.Data[p*n+n16:(p+1)*n])
		}
	}
	return pp
}

// RematPanels wraps a seeded generator as a GEMM right-hand side. Nothing is
// stored: each K-block panel is regenerated into caller scratch inside the
// product, bit-identical to prepacking the generator's materialized matrix.
func RematPanels(gen *BipolarGen) *ProjPanels {
	return &ProjPanels{k: gen.Rows, n: gen.Cols, gen: gen}
}

// Dims returns the panel matrix shape [K, N].
func (pp *ProjPanels) Dims() (k, n int) { return pp.k, pp.n }

// Remat reports whether the panels are generator-backed (nothing stored).
func (pp *ProjPanels) Remat() bool { return pp.gen != nil }

// MemoryBytes is the panels' resident storage: the seed alone when
// rematerializing, the packed strips + tail on the asm path, or the shared
// dense matrix it references on the portable path.
func (pp *ProjPanels) MemoryBytes() int64 {
	if pp.gen != nil {
		return 8
	}
	if pp.dense != nil {
		return int64(len(pp.dense)) * 4
	}
	return int64(len(pp.strips)+len(pp.tail)) * 4
}

// MatMulPanelsBlock computes one column block of a(M×K) @ B(K×N): columns
// [c0, c0+w) with w = min(PanelBlockCols, N−c0), written as a compact
// row-major [m, w] tile into dst (length ≥ m·w). c0 must be a multiple of
// PanelBlockCols. scratch needs PanelScratch() floats. Strictly serial, zero
// allocations; returns w. Every element is bit-identical to the same column
// of MatMulSerialInto against the materialized matrix.
func MatMulPanelsBlock(dst []float32, a *Tensor, pp *ProjPanels, c0 int, scratch []float32) int {
	m, k := checkPanelsArgs(a, pp, scratch)
	if c0 < 0 || c0 >= pp.n || c0%gemmNC != 0 {
		panic(fmt.Sprintf("tensor: MatMulPanelsBlock offset %d (n=%d, block %d)", c0, pp.n, gemmNC))
	}
	w := gemmNC
	if c0+w > pp.n {
		w = pp.n - c0
	}
	clear(dst[:m*w])
	pp.block(dst, w, 0, a.Data, m, k, c0, w, scratch)
	return w
}

// MatMulPanelsInto computes the full product dst = a(M×K) @ B(K×N) with dst
// [M, N], walking the column blocks of MatMulPanelsBlock. Strictly serial,
// zero allocations, bit-identical to MatMulSerialInto on the materialized
// matrix.
func MatMulPanelsInto(dst, a *Tensor, pp *ProjPanels, scratch []float32) {
	m, k := checkPanelsArgs(a, pp, scratch)
	if dst.Rank() != 2 || dst.Shape[0] != m || dst.Shape[1] != pp.n {
		panic(fmt.Sprintf("tensor: MatMulPanelsInto dst shape %v, want [%d %d]", dst.Shape, m, pp.n))
	}
	clear(dst.Data[:m*pp.n])
	for c0 := 0; c0 < pp.n; c0 += gemmNC {
		w := gemmNC
		if c0+w > pp.n {
			w = pp.n - c0
		}
		pp.block(dst.Data, pp.n, c0, a.Data, m, k, c0, w, scratch)
	}
}

func checkPanelsArgs(a *Tensor, pp *ProjPanels, scratch []float32) (m, k int) {
	if a.Rank() != 2 {
		panic("tensor: panel GEMM requires a rank-2 LHS")
	}
	m, k = a.Shape[0], a.Shape[1]
	if k != pp.k {
		panic(fmt.Sprintf("tensor: panel GEMM K mismatch: a is [%d %d], panels hold K=%d", m, k, pp.k))
	}
	if pp.gen != nil && len(scratch) < PanelScratch() {
		panic(fmt.Sprintf("tensor: panel GEMM scratch %d < PanelScratch %d", len(scratch), PanelScratch()))
	}
	return m, k
}

// block accumulates columns [c0, c0+w) of a @ B into dst, whose element
// (i, j) lives at dst[i*ldd + dcol + j]. dst must be pre-cleared. It mirrors
// gemmRangeScratch's schedule for one NC block: K blocks ascending; within
// each, the 4×16 asm micro-kernel over 16-wide strips for full 4-row groups,
// the 1×16 strip kernel for leftover rows, and the portable kernel for the
// ragged column tail.
func (pp *ProjPanels) block(dst []float32, ldd, dcol int, a []float32, m, k, c0, w int, scratch []float32) {
	if m == 0 || k == 0 {
		return
	}
	w16 := 0
	if useGemmAsm {
		n16 := pp.n / 16 * 16
		w16 = w
		if c0+w16 > n16 {
			w16 = n16 - c0
		}
	}
	for pb := 0; pb < k; pb += gemmKC {
		pe := pb + gemmKC
		if pe > k {
			pe = k
		}
		kc := pe - pb
		if w16 > 0 {
			var strip []float32
			if pp.gen != nil {
				strip = scratch[:kc*w16]
				pp.gen.fillStrips(strip, pb, pe, c0, c0+w16)
			} else {
				base := pp.stripBase[c0/gemmNC] + pb*w16
				strip = pp.strips[base : base+kc*w16]
			}
			i := 0
			for ; i+gemmMR <= m; i += gemmMR {
				for js := 0; js < w16; js += gemmNR {
					st := strip[js*kc:]
					gemm4x16(kc,
						&a[i*k+pb], &a[(i+1)*k+pb], &a[(i+2)*k+pb], &a[(i+3)*k+pb],
						&st[0],
						&dst[i*ldd+dcol+js], &dst[(i+1)*ldd+dcol+js], &dst[(i+2)*ldd+dcol+js], &dst[(i+3)*ldd+dcol+js])
				}
			}
			// Leftover rows — all rows, at batch 1 — run the 1×16 strip
			// kernel over the same panel, in the same per-element order as
			// gemm4x16, instead of a scalar sweep.
			for ; i < m; i++ {
				gemm1x16s(kc, w16/gemmNR, &a[i*k+pb], &strip[0], &dst[i*ldd+dcol])
			}
		}
		if w16 < w {
			tw := w - w16
			var bt []float32
			ldb, brow0, bj := 0, 0, 0
			switch {
			case pp.gen != nil:
				buf := scratch[gemmKC*gemmNC:]
				if w16 == 0 {
					buf = scratch // portable path: the strip region is unused
				}
				bt = buf[:kc*tw]
				pp.gen.FillTile(bt, tw, pb, pe, c0+w16, c0+w)
				ldb, brow0 = tw, pb
			case pp.dense != nil:
				bt, ldb, bj = pp.dense, pp.n, c0+w16
			default:
				n16 := pp.n / 16 * 16
				bt, ldb, bj = pp.tail, pp.n-n16, c0+w16-n16
			}
			goPanelPart(dst, a, bt, ldd, k, ldb, m, pb, pe, brow0, dcol+w16, bj, tw)
		}
	}
}

// goPanelPart is gemmGoPart with independent leading dimensions: it
// accumulates dst[i*ldd + dj + j] += Σ a[i*k+p] · b[(p−brow0)*ldb + bj + j]
// for j ∈ [0, width), rows [0, m), p ∈ [pb, pe). Same 4-row broadcast-AXPY
// structure and per-element accumulation order as gemmGoPart.
func goPanelPart(dst, a, b []float32, ldd, k, ldb, m, pb, pe, brow0, dj, bj, width int) {
	i := 0
	for ; i+gemmMR <= m; i += gemmMR {
		o0 := dst[i*ldd+dj : i*ldd+dj+width]
		o1 := dst[(i+1)*ldd+dj : (i+1)*ldd+dj+width]
		o2 := dst[(i+2)*ldd+dj : (i+2)*ldd+dj+width]
		o3 := dst[(i+3)*ldd+dj : (i+3)*ldd+dj+width]
		for p := pb; p < pe; p++ {
			brow := b[(p-brow0)*ldb+bj : (p-brow0)*ldb+bj+width]
			axpy4(a[i*k+p], a[(i+1)*k+p], a[(i+2)*k+p], a[(i+3)*k+p], brow, o0, o1, o2, o3)
		}
	}
	for ; i < m; i++ {
		o0 := dst[i*ldd+dj : i*ldd+dj+width]
		for p := pb; p < pe; p++ {
			axpy1(a[i*k+p], b[(p-brow0)*ldb+bj:(p-brow0)*ldb+bj+width], o0)
		}
	}
}
