package tensor

import "fmt"

// Implicit-GEMM convolution: dst = wmat(OutC × C·KH·KW) @ im2col(g, x)
// without ever materializing the [C·KH·KW, OutH·OutW] column matrix. The
// blocked GEMM already walks B in KC×NC tiles; on the asm path each tile's
// 16-wide strips are generated from the image DIRECTLY in packed panel
// layout — the fused im2col→pack the materialized path spends most of a
// batch-1 conv on (write cols, read cols, write panel) collapses to a single
// generate-into-panel write. The ragged column tail (< 16 columns) is
// generated densely and consumed by the portable kernel, as is the whole
// product on targets without the asm micro-kernel.
//
// Bit-exactness contract: generated values are copies of exactly the
// elements Im2Col would produce, and the kernel runs gemmRangeScratch's
// schedule (same KC/NC blocking, same micro-kernels, same row/column-tail
// kernels in the same order), so the output is bit-identical to
// MatMulSerialInto(dst, wmat, im2col(g, x)). TestConvMulMatchesIm2Col pins
// this across odd shapes, strides, and pads.

// ConvGemmScratch returns the float32 scratch length ConvMulSerialInto
// needs: a packed panel plus a dense column-tail tile on the asm path, one
// full dense tile on the portable path.
func ConvGemmScratch() int {
	if useGemmAsm {
		return gemmKC*gemmNC + gemmKC*gemmNR
	}
	return gemmKC * gemmNC
}

// ConvMulSerialInto computes dst = wmat @ im2col(g, x) for one image x
// (length ≥ InC·InH·InW), with wmat [OutC, InC·KH·KW] and dst
// [OutC, OutH·OutW]. Strictly serial, zero heap allocations; scratch needs
// ConvGemmScratch() floats.
func ConvMulSerialInto(dst, wmat *Tensor, g ConvGeom, x []float32, scratch []float32) {
	kdim := g.InC * g.KH * g.KW
	nOut := g.OutH() * g.OutW()
	if wmat.Rank() != 2 || wmat.Shape[1] != kdim {
		panic(fmt.Sprintf("tensor: ConvMul weight shape %v, want [*, %d]", wmat.Shape, kdim))
	}
	m := wmat.Shape[0]
	if dst.Rank() != 2 || dst.Shape[0] != m || dst.Shape[1] != nOut {
		panic(fmt.Sprintf("tensor: ConvMul dst shape %v, want [%d %d]", dst.Shape, m, nOut))
	}
	if len(scratch) < ConvGemmScratch() {
		panic(fmt.Sprintf("tensor: ConvMul scratch %d < ConvGemmScratch %d", len(scratch), ConvGemmScratch()))
	}
	a := wmat.Data
	clear(dst.Data[:m*nOut])
	for jb := 0; jb < nOut; jb += gemmNC {
		je := jb + gemmNC
		if je > nOut {
			je = nOut
		}
		w := je - jb
		for pb := 0; pb < kdim; pb += gemmKC {
			pe := pb + gemmKC
			if pe > kdim {
				pe = kdim
			}
			kc := pe - pb
			if useGemmAsm {
				nFull := w / gemmNR * gemmNR
				if nFull > 0 {
					panel := scratch[:gemmKC*gemmNC]
					convPackStrips(g, x, 0, g.InH, panel, pb, pe, jb, nFull)
					i := 0
					for ; i+gemmMR <= m; i += gemmMR {
						for js := 0; js < nFull; js += gemmNR {
							strip := panel[js*kc:]
							gemm4x16(kc,
								&a[i*kdim+pb], &a[(i+1)*kdim+pb], &a[(i+2)*kdim+pb], &a[(i+3)*kdim+pb],
								&strip[0],
								&dst.Data[i*nOut+jb+js], &dst.Data[(i+1)*nOut+jb+js],
								&dst.Data[(i+2)*nOut+jb+js], &dst.Data[(i+3)*nOut+jb+js])
						}
					}
					for ; i < m; i++ {
						gemm1x16s(kc, nFull/gemmNR, &a[i*kdim+pb], &panel[0], &dst.Data[i*nOut+jb])
					}
				}
				if nFull < w {
					tw := w - nFull
					tile := scratch[gemmKC*gemmNC : gemmKC*gemmNC+kc*tw]
					im2colTile(g, x, 0, g.InH, tile, tw, pb, pe, jb+nFull, je)
					goPanelPart(dst.Data, a, tile, nOut, kdim, tw, m, pb, pe, pb, jb+nFull, 0, tw)
				}
			} else {
				tile := scratch[:kc*w]
				im2colTile(g, x, 0, g.InH, tile, w, pb, pe, jb, je)
				goPanelPart(dst.Data, a, tile, nOut, kdim, w, m, pb, pe, pb, jb, 0, w)
			}
		}
	}
}

// convPackStrips generates im2col rows [pb, pe) × columns [jb, jb+nFull) —
// a whole number of 16-column strips — straight into panel in packPanel16's
// strip-major, p-major layout. Values match Im2Col exactly: zeros at padding
// positions, copies of x elsewhere. This is the fused im2col→pack: the
// column matrix underneath is never materialized.
//
// x may hold a row window of the image instead of the full planes: it must
// contain input rows [xRow0, xRow0+xRows) of each channel, packed with a
// channel stride of xRows·InW. A full image is (xRow0, xRows) = (0, InH).
// Padding decisions still use the full-image geometry, so the generated
// values are independent of the window as long as it covers every in-bounds
// row the requested columns read. Rows outside the window generate zeros —
// columns that reach past the window (the unowned lanes of a spill strip)
// get well-defined garbage instead of faulting, and their lanes are never
// copied out.
func convPackStrips(g ConvGeom, x []float32, xRow0, xRows int, panel []float32, pb, pe, jb, nFull int) {
	outW := g.OutW()
	if g.StrideW == 1 && outW%gemmNR == 0 {
		// Every strip lies inside one output row: the wide specialization
		// hoists the per-p bounds work out of the strip loop, which roughly
		// halves generation cost on VGG-shaped maps.
		convPackStripsWide(g, x, xRow0, xRows, panel, pb, pe, jb, nFull)
		return
	}
	kc := pe - pb
	khw := g.KH * g.KW
	rLo, rHi := max(0, xRow0), min(g.InH, xRow0+xRows)
	// Per-strip output-row segments: local column spans [segLo, segHi) that
	// fall on output row segOh. A strip has at most 16 of them (outW = 1).
	var segLo, segHi, segOh [gemmNR]int
	for js := 0; js < nFull; js += gemmNR {
		j0 := jb + js
		nseg := 0
		for lo := j0; lo < j0+gemmNR; {
			oh := lo / outW
			hi := (oh + 1) * outW
			if hi > j0+gemmNR {
				hi = j0 + gemmNR
			}
			segLo[nseg], segHi[nseg], segOh[nseg] = lo-j0, hi-j0, oh
			nseg++
			lo = hi
		}
		strip := panel[js*kc:]
		// (c, kh, kw) tracks p incrementally — no divisions in the p loop.
		c := pb / khw
		r := pb % khw
		kh := r / g.KW
		kw := r % g.KW
		for p := pb; p < pe; p++ {
			chanBase := (c*xRows - xRow0) * g.InW
			row := strip[(p-pb)*gemmNR : (p-pb)*gemmNR+gemmNR]
			for si := 0; si < nseg; si++ {
				lo, hi, oh := segLo[si], segHi[si], segOh[si]
				seg := row[lo:hi]
				ih := oh*g.StrideH - g.PadH + kh
				if ih < rLo || ih >= rHi {
					clear(seg)
				} else if srcBase := chanBase + ih*g.InW; g.StrideW == 1 {
					// In-bounds iw = ow − PadW + kw on [owLo, owHi), clipped
					// to this segment's ow window [j0+lo−base, j0+hi−base).
					owLo := max(0, g.PadW-kw)
					owHi := min(outW, g.InW+g.PadW-kw)
					base := oh * outW
					l := min(max(owLo, j0+lo-base), j0+hi-base)
					h := max(min(owHi, j0+hi-base), l)
					if h-l == gemmNR {
						// The whole strip row is one in-bounds span — the hot
						// case on interior columns. A fixed-size copy compiles
						// to two vector moves instead of a memmove call, which
						// at 16 floats a row is most of the generation cost.
						*(*[gemmNR]float32)(row) = *(*[gemmNR]float32)(x[srcBase+l-g.PadW+kw:])
						continue
					}
					clear(row[lo : base+l-j0])
					if h > l {
						s := srcBase + l - g.PadW + kw
						copy(row[base+l-j0:base+h-j0], x[s:s+h-l])
					}
					clear(row[base+h-j0 : hi])
				} else {
					ow0 := j0 + lo - oh*outW
					for ii := range seg {
						iw := (ow0+ii)*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							seg[ii] = 0
						} else {
							seg[ii] = x[srcBase+iw]
						}
					}
				}
			}
			kw++
			if kw == g.KW {
				kw = 0
				kh++
				if kh == g.KH {
					kh = 0
					c++
				}
			}
		}
	}
}

// packTables is convPackStripsWide's per-p precomputation: for im2col row
// p = pb+q, rowBase[q] is the x offset of output column (0, 0)'s source
// element (before the oh·StrideH·InW term), ihOff[q] the input-row offset
// (ih = oh·StrideH + ihOff), and [owLo, owHi) the in-bounds ow span of p's
// kw. Sized for one K block (kc ≤ gemmKC), so it lives on the stack.
type packTables struct {
	rowBase, ihOff, owLo, owHi [gemmKC]int32
}

// convPackStripsWide is convPackStrips for StrideW == 1 and outW a multiple
// of gemmNR: every 16-column strip then falls inside a single output row.
// Loops run strip-outer / p-inner — the opposite nesting from the general
// path — so panel writes are sequential 64-byte rows instead of one row per
// strided strip, and the per-p geometry collapses to four table lookups.
// Identical output to the general path.
func convPackStripsWide(g ConvGeom, x []float32, xRow0, xRows int, panel []float32, pb, pe, jb, nFull int) {
	outW := g.OutW()
	kc := pe - pb
	khw := g.KH * g.KW
	rLo, rHi := max(0, xRow0), min(g.InH, xRow0+xRows)
	var tab packTables
	c := pb / khw
	r := pb % khw
	kh := r / g.KW
	kw := r % g.KW
	for q := 0; q < kc; q++ {
		tab.rowBase[q] = int32((c*xRows-xRow0+kh-g.PadH)*g.InW + kw - g.PadW)
		tab.ihOff[q] = int32(kh - g.PadH)
		tab.owLo[q] = int32(max(0, g.PadW-kw))
		tab.owHi[q] = int32(min(outW, g.InW+g.PadW-kw))
		kw++
		if kw == g.KW {
			kw = 0
			kh++
			if kh == g.KH {
				kh = 0
				c++
			}
		}
	}
	stripLen := kc * gemmNR
	for s := 0; s*gemmNR < nFull; s++ {
		j0 := jb + s*gemmNR
		oh := j0 / outW
		ow0 := j0 - oh*outW
		packOneStrip(panel[s*stripLen:s*stripLen+stripLen], x, &tab, kc,
			int32(oh*g.StrideH), int32(ow0), int32(oh*g.StrideH*g.InW+ow0), int32(rLo), int32(rHi))
	}
}

// packOneStrip fills one 16-column strip (kc rows of 16 floats, written
// sequentially) for the output row at ihBase = oh·StrideH, columns
// [ow0, ow0+16). Kept out of line so the hot loop gets its own register
// allocation instead of sharing the generator's spill-heavy frame.
//
//go:noinline
func packOneStrip(strip, x []float32, tab *packTables, kc int, ihBase, ow0, base, rLo, rHi int32) {
	for q := 0; q < kc; q++ {
		row := strip[q*gemmNR : q*gemmNR+gemmNR]
		ih := ihBase + tab.ihOff[q]
		if ih < rLo || ih >= rHi {
			clear(row)
			continue
		}
		l := max(tab.owLo[q], ow0)
		h := min(tab.owHi[q], ow0+gemmNR)
		src := int(tab.rowBase[q] + base)
		if h-l == gemmNR {
			// Copy via a local temporary: the compiler then emits vector
			// register moves instead of a memmove call (it cannot prove the
			// direct copy's operands don't overlap).
			t := *(*[gemmNR]float32)(x[src:])
			*(*[gemmNR]float32)(row) = t
		} else {
			packPartialRow(row, x, src-int(ow0), int(ow0), int(l), int(h))
		}
	}
}

// packPartialRow fills one 16-float strip row whose columns [ow0, ow0+16)
// overlap the in-bounds span [lo, hi) only partially: zeros outside, copies
// of x[src+ow] inside — the same values the general path produces.
func packPartialRow(row []float32, x []float32, src, ow0, lo, hi int) {
	l := min(max(lo, ow0), ow0+gemmNR)
	h := max(min(hi, ow0+gemmNR), l)
	clear(row[:l-ow0])
	if h > l {
		copy(row[l-ow0:h-ow0], x[src+l:src+h])
	}
	clear(row[h-ow0 : gemmNR])
}

// im2colTile generates rows [pb, pe) × columns [jb, je) of the im2col matrix
// into tile (row-major, leading dimension ld = je−jb). Row p corresponds to
// (c, kh, kw) = (p / (KH·KW), (p / KW) mod KH, p mod KW); column j to output
// location (oh, ow) = (j / OutW, j mod OutW). Values match Im2Col exactly:
// zeros at padding positions, copies of x elsewhere. x may hold a row window
// of the image, exactly as in convPackStrips: rows [xRow0, xRow0+xRows) of
// each channel with channel stride xRows·InW; rows outside the window
// generate zeros.
func im2colTile(g ConvGeom, x []float32, xRow0, xRows int, tile []float32, ld, pb, pe, jb, je int) {
	outW := g.OutW()
	khw := g.KH * g.KW
	rLo, rHi := max(0, xRow0), min(g.InH, xRow0+xRows)
	c := pb / khw
	r := pb % khw
	kh := r / g.KW
	kw := r % g.KW
	for p := pb; p < pe; p++ {
		chanBase := (c*xRows - xRow0) * g.InW
		row := tile[(p-pb)*ld : (p-pb)*ld+ld]
		for j0 := jb; j0 < je; {
			oh := j0 / outW
			j1 := (oh + 1) * outW
			if j1 > je {
				j1 = je
			}
			seg := row[j0-jb : j1-jb]
			ih := oh*g.StrideH - g.PadH + kh
			if ih < rLo || ih >= rHi {
				clear(seg)
				j0 = j1
				continue
			}
			srcBase := chanBase + ih*g.InW
			if g.StrideW == 1 {
				// In-bounds iw = ow − PadW + kw on [owLo, owHi), clipped to
				// this segment's [j0−oh·outW, j1−oh·outW) window.
				owLo := max(0, g.PadW-kw)
				owHi := min(outW, g.InW+g.PadW-kw)
				base := oh * outW
				lo := min(max(owLo, j0-base), j1-base)
				hi := max(min(owHi, j1-base), lo)
				clear(row[j0-jb : base+lo-jb])
				if hi > lo {
					s := srcBase + lo - g.PadW + kw
					copy(row[base+lo-jb:base+hi-jb], x[s:s+hi-lo])
				}
				clear(row[base+hi-jb : j1-jb])
				j0 = j1
				continue
			}
			for ji := range seg {
				ow := j0 - oh*outW + ji
				iw := ow*g.StrideW - g.PadW + kw
				if iw < 0 || iw >= g.InW {
					seg[ji] = 0
				} else {
					seg[ji] = x[srcBase+iw]
				}
			}
			j0 = j1
		}
		kw++
		if kw == g.KW {
			kw = 0
			kh++
			if kh == g.KH {
				kh = 0
				c++
			}
		}
	}
}
