package tensor

import (
	"math/bits"
	"math/rand"
	"testing"
)

func refXorPopcount(a, b []uint64) int {
	s := 0
	for w := range a {
		s += bits.OnesCount64(a[w] ^ b[w])
	}
	return s
}

func refXorMaskPopcount(q, sgn, msk []uint64) int {
	s := 0
	for w := range q {
		s += bits.OnesCount64((q[w] ^ sgn[w]) & msk[w])
	}
	return s
}

func randWords(rng *rand.Rand, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		switch rng.Intn(5) {
		case 0:
			w[i] = 0
		case 1:
			w[i] = ^uint64(0)
		default:
			w[i] = rng.Uint64()
		}
	}
	return w
}

// TestXorPopcountMatchesScalar sweeps lengths across the asm threshold and
// the 4-word group boundary, including the degenerate all-zero/all-one words,
// with both kernels forced via popcntAsmMinWords.
func TestXorPopcountMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	saved := popcntAsmMinWords
	defer func() { popcntAsmMinWords = saved }()
	for n := 0; n <= 70; n++ {
		for trial := 0; trial < 4; trial++ {
			a := randWords(rng, n)
			b := randWords(rng, n+rng.Intn(3)) // b may be longer
			want := refXorPopcount(a, b[:n])
			for _, min := range []int{0, 1 << 30} {
				popcntAsmMinWords = min
				if got := XorPopcount(a, b); got != want {
					t.Fatalf("XorPopcount(n=%d, min=%d) = %d, want %d", n, min, got, want)
				}
			}
		}
	}
}

func TestXorMaskPopcountMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	saved := popcntAsmMinWords
	defer func() { popcntAsmMinWords = saved }()
	for n := 0; n <= 70; n++ {
		for trial := 0; trial < 4; trial++ {
			q := randWords(rng, n)
			extra := rng.Intn(3)
			sgn := randWords(rng, n+extra)
			msk := randWords(rng, n+extra)
			want := refXorMaskPopcount(q, sgn[:n], msk[:n])
			for _, min := range []int{0, 1 << 30} {
				popcntAsmMinWords = min
				if got := XorMaskPopcount(q, sgn, msk); got != want {
					t.Fatalf("XorMaskPopcount(n=%d, min=%d) = %d, want %d", n, min, got, want)
				}
			}
		}
	}
}

// TestXorPopcountParallel hammers the vector kernel from concurrent
// goroutines over shared inputs — run under -race by the race gate — to pin
// that it is read-only and state-free.
func TestXorPopcountParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	const n = 64
	a := randWords(rng, n)
	b := randWords(rng, n)
	msk := randWords(rng, n)
	want := refXorPopcount(a, b)
	wantM := refXorMaskPopcount(a, b, msk)
	t.Run("group", func(t *testing.T) {
		for g := 0; g < 8; g++ {
			t.Run("", func(t *testing.T) {
				t.Parallel()
				for i := 0; i < 200; i++ {
					if got := XorPopcount(a, b); got != want {
						t.Fatalf("XorPopcount = %d, want %d", got, want)
					}
					if got := XorMaskPopcount(a, b, msk); got != wantM {
						t.Fatalf("XorMaskPopcount = %d, want %d", got, wantM)
					}
				}
			})
		}
	})
}
