package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window
// applied to an input of C channels and H×W spatial extent.
type ConvGeom struct {
	InC, InH, InW int
	KH, KW        int
	StrideH       int
	StrideW       int
	PadH          int
	PadW          int
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// Validate checks the geometry produces a positive output extent.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive input dims %+v", g)
	}
	if g.KH <= 0 || g.KW <= 0 || g.StrideH <= 0 || g.StrideW <= 0 {
		return fmt.Errorf("tensor: conv geometry has non-positive kernel/stride %+v", g)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: conv geometry yields non-positive output %+v", g)
	}
	return nil
}

// Im2Col expands one image (C×H×W, flattened in x) into a matrix of shape
// (C*KH*KW) × (OutH*OutW), written into cols. Each column holds the receptive
// field of one output location; out-of-bounds (padding) positions are zero.
func Im2Col(g ConvGeom, x []float32, cols *Tensor) {
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	if cols.Shape[0] != rows || cols.Shape[1] != outH*outW {
		panic(fmt.Sprintf("tensor: Im2Col output shape %v, want [%d %d]", cols.Shape, rows, outH*outW))
	}
	nOut := outH * outW
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := ((c*g.KH+kh)*g.KW + kw) * nOut
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					dstBase := row + oh*outW
					if ih < 0 || ih >= g.InH {
						clear(cols.Data[dstBase : dstBase+outW])
						continue
					}
					srcBase := chanBase + ih*g.InW
					if g.StrideW == 1 {
						// iw = ow - PadW + kw is in bounds on [owLo, owHi):
						// one bulk copy flanked by zero fills.
						owLo := max(0, g.PadW-kw)
						owHi := min(outW, g.InW+g.PadW-kw)
						owHi = max(owHi, owLo)
						clear(cols.Data[dstBase : dstBase+owLo])
						s := srcBase + owLo - g.PadW + kw
						copy(cols.Data[dstBase+owLo:dstBase+owHi], x[s:s+owHi-owLo])
						clear(cols.Data[dstBase+owHi : dstBase+outW])
						continue
					}
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							cols.Data[dstBase+ow] = 0
						} else {
							cols.Data[dstBase+ow] = x[srcBase+iw]
						}
					}
				}
			}
		}
	}
}

// Col2Im scatters the column matrix (as produced by Im2Col) back into an
// image gradient of C×H×W, accumulating overlapping contributions into dx.
// dx must be pre-zeroed by the caller if accumulation from scratch is wanted.
func Col2Im(g ConvGeom, cols *Tensor, dx []float32) {
	outH, outW := g.OutH(), g.OutW()
	nOut := outH * outW
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := ((c*g.KH+kh)*g.KW + kw) * nOut
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						continue
					}
					srcBase := row + oh*outW
					dstBase := chanBase + ih*g.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw >= 0 && iw < g.InW {
							dx[dstBase+iw] += cols.Data[srcBase+ow]
						}
					}
				}
			}
		}
	}
}
