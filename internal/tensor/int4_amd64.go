package tensor

// int4SignDotAsm is the AVX2 int4×bipolar row dot (see int4_amd64.s); gated
// by useGemmAsm like the float micro-kernels. nw must be ≥ 1 with nw·32 nib
// bytes and nw query words addressable. Bit-identical to int4SignDotGo: both
// compute the same exact integer.
//
//go:noescape
func int4SignDotAsm(nw int, nib *byte, q *uint64) int32
