package tensor

import (
	"math/rand"
	"testing"
)

// TestGatherBlocksConsistency pins the gather contract: the gathered
// generator, the gathered dense matrix, and the rematerialized panel GEMM all
// reproduce exactly the kept columns of the parent, for aligned and ragged
// final blocks and arbitrary kept subsets.
func TestGatherBlocksConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const block = 256
	cases := []struct {
		cols int
		keep []int
	}{
		{cols: 1024, keep: []int{0, 1, 2, 3}},
		{cols: 1024, keep: []int{1, 3}},
		{cols: 1024, keep: []int{0}},
		{cols: 1000, keep: []int{0, 3}}, // ragged final block kept
		{cols: 1000, keep: []int{1, 2}}, // ragged final block dropped
		{cols: 1000, keep: []int{3}},
	}
	for _, tc := range cases {
		g := NewBipolarGen(1234, 7, tc.cols)
		full := New(7, tc.cols)
		g.FillInto(full)
		want := GatherColBlocks(full, tc.keep, block)

		gg := g.GatherBlocks(tc.keep, block)
		if gg.Cols != want.Shape[1] {
			t.Fatalf("cols=%d keep=%v: gathered gen cols %d, want %d", tc.cols, tc.keep, gg.Cols, want.Shape[1])
		}
		got := New(7, gg.Cols)
		gg.FillInto(got)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("cols=%d keep=%v: gathered gen differs from gathered dense at flat %d", tc.cols, tc.keep, i)
			}
		}

		// Rematerialized panel GEMM over the gathered generator must match the
		// serial GEMM over the gathered dense matrix bit-for-bit.
		feats := New(3, 7)
		for i := range feats.Data {
			feats.Data[i] = rng.Float32()*2 - 1
		}
		wantOut := New(3, gg.Cols)
		MatMulSerialInto(wantOut, feats, want, make([]float32, GemmScratch()))
		gotOut := New(3, gg.Cols)
		MatMulPanelsInto(gotOut, feats, RematPanels(gg), make([]float32, PanelScratch()))
		for i := range wantOut.Data {
			if gotOut.Data[i] != wantOut.Data[i] {
				t.Fatalf("cols=%d keep=%v: remat GEMM differs at flat %d", tc.cols, tc.keep, i)
			}
		}
	}
}
