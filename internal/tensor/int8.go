package tensor

import (
	"fmt"
	"sync"

	"nshd/internal/parallel"
)

// Quantized (int8) compute kernels. The GEMM multiplies a signed-int8 weight
// matrix by an unsigned-int8 activation matrix into int32 accumulators —
// the operand signedness convention of every major int8 inference stack
// (gemmlowp, oneDNN, XNNPACK) and of the AVX-VNNI VPDPBUSD instruction,
// which multiplies u8×i8 pairs exactly with no intermediate saturation.
//
// The kernel reuses the float GEMM's BLIS-style blocking (gemmNC-column ×
// gemmKC-row panels, 4×16 register tiles) but packs the activation panel in
// K-quads: each 16-column strip stores, for every group of four K rows, the
// four bytes of each column contiguously as one little-endian dword. One
// VPDPBUSD then retires 64 multiply-adds (16 columns × 4 K steps) per packed
// 64-byte load pair — 4× the MACs/instruction of the float FMA kernel.
//
// Because every accumulation is exact integer arithmetic, serial, parallel,
// assembly and pure-Go execution are all bit-identical by construction; the
// property test in int8_test.go checks this against a naive triple loop
// including saturation-extreme operands (±127 weights, 0/255 activations).

// int8PanelPool recycles packed activation panels across GEMM calls.
var int8PanelPool = sync.Pool{New: func() any {
	buf := make([]uint8, gemmKC*gemmNC)
	return &buf
}}

// Int8GemmScratch returns the packed-panel buffer length (in bytes) that
// MatMulInt8SerialInto needs; zero on targets without the VNNI micro-kernel.
func Int8GemmScratch() int {
	if useInt8Asm {
		return gemmKC * gemmNC
	}
	return 0
}

// MatMulInt8Into computes dst = a(M×K, int8) @ b(K×N, uint8) with int32
// accumulation, parallelized over output tiles. dst must hold m*n elements
// and must not alias the operands. Results are exact (integer arithmetic
// never rounds), so serial and parallel execution are bit-identical.
func MatMulInt8Into(dst []int32, a []int8, b []uint8, m, n, k int) {
	checkInt8Shapes(dst, a, b, m, n, k)
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		clear(dst[:m*n])
		return
	}
	workers := parallel.Workers()
	if workers <= 1 || 2*m*n*k < 2*gemmMinParallelFlops {
		gemmInt8Range(dst, a, b, nil, n, k, 0, m, 0, n)
		return
	}
	jobs := gemmSplit(m, n, k, workers)
	parallel.For(len(jobs), func(lo, hi int) {
		for ji := lo; ji < hi; ji++ {
			j := jobs[ji]
			gemmInt8Range(dst, a, b, nil, n, k, j.r0, j.r1, j.c0, j.c1)
		}
	})
}

// MatMulInt8SerialInto is MatMulInt8Into strictly on the calling goroutine
// with a caller-owned packed-panel buffer (length ≥ Int8GemmScratch(); nil is
// accepted when Int8GemmScratch() == 0). No heap allocation, no pool
// dispatch — the quantized serving path's GEMM.
func MatMulInt8SerialInto(dst []int32, a []int8, b []uint8, m, n, k int, scratch []uint8) {
	checkInt8Shapes(dst, a, b, m, n, k)
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		clear(dst[:m*n])
		return
	}
	if useInt8Asm && len(scratch) < gemmKC*gemmNC {
		panic(fmt.Sprintf("tensor: MatMulInt8SerialInto scratch %d < Int8GemmScratch %d", len(scratch), gemmKC*gemmNC))
	}
	gemmInt8Range(dst, a, b, scratch, n, k, 0, m, 0, n)
}

// MatMulInt8NaiveInto is the reference triple loop the blocked kernel is
// validated against: plain i·p·j accumulation in int32.
func MatMulInt8NaiveInto(dst []int32, a []int8, b []uint8, m, n, k int) {
	checkInt8Shapes(dst, a, b, m, n, k)
	for i := 0; i < m; i++ {
		out := dst[i*n : (i+1)*n]
		clear(out)
		for p := 0; p < k; p++ {
			av := int32(a[i*k+p])
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				out[j] += av * int32(bv)
			}
		}
	}
}

func checkInt8Shapes(dst []int32, a []int8, b []uint8, m, n, k int) {
	if m < 0 || n < 0 || k < 0 {
		panic("tensor: MatMulInt8 negative dimension")
	}
	if len(a) < m*k || len(b) < k*n || len(dst) < m*n {
		panic(fmt.Sprintf("tensor: MatMulInt8 buffer too short for %dx%d @ %dx%d", m, k, k, n))
	}
}

// gemmInt8Range computes the dst tile rows [r0,r1) × cols [c0,c1),
// overwriting it. buf is the packed-panel scratch; nil means take one from
// the pool (asm path only).
func gemmInt8Range(dst []int32, a []int8, b, buf []uint8, n, k, r0, r1, c0, c1 int) {
	if useInt8Asm && buf == nil {
		bufp := int8PanelPool.Get().(*[]uint8)
		buf = *bufp
		defer int8PanelPool.Put(bufp)
	}
	for i := r0; i < r1; i++ {
		clear(dst[i*n+c0 : i*n+c1])
	}
	for jb := c0; jb < c1; jb += gemmNC {
		je := jb + gemmNC
		if je > c1 {
			je = c1
		}
		for pb := 0; pb < k; pb += gemmKC {
			pe := pb + gemmKC
			if pe > k {
				pe = k
			}
			if useInt8Asm {
				gemmInt8AsmPart(dst, a, b, buf, n, k, r0, r1, jb, je, pb, pe)
			} else {
				gemmInt8GoPart(dst, a, b, n, k, r0, r1, jb, je, pb, pe)
			}
		}
	}
}

// gemmInt8AsmPart runs the VNNI micro-kernel over all full 4×16 tiles of the
// K-block [pb,pe), delegating row tails, column tails and the K%4 remainder
// to the scalar kernel. Integer accumulation makes the split exact.
func gemmInt8AsmPart(dst []int32, a []int8, b, buf []uint8, n, k, r0, r1, jb, je, pb, pe int) {
	kc := pe - pb
	kq := kc / 4
	nFull := (je - jb) / gemmNR * gemmNR
	if nFull > 0 && kq > 0 {
		packPanelInt8(buf, b, n, pb, pb+4*kq, jb, jb+nFull)
		i := r0
		for ; i+gemmMR <= r1; i += gemmMR {
			for js := 0; js < nFull; js += gemmNR {
				strip := buf[js*4*kq:]
				gemmInt8_4x16(kq,
					&a[i*k+pb], &a[(i+1)*k+pb], &a[(i+2)*k+pb], &a[(i+3)*k+pb],
					&strip[0],
					&dst[i*n+jb+js], &dst[(i+1)*n+jb+js], &dst[(i+2)*n+jb+js], &dst[(i+3)*n+jb+js])
			}
		}
		if i < r1 {
			gemmInt8GoPart(dst, a, b, n, k, i, r1, jb, jb+nFull, pb, pb+4*kq)
		}
		if 4*kq < kc {
			gemmInt8GoPart(dst, a, b, n, k, r0, r1, jb, jb+nFull, pb+4*kq, pe)
		}
	} else if nFull > 0 {
		gemmInt8GoPart(dst, a, b, n, k, r0, r1, jb, jb+nFull, pb, pe)
	}
	if jb+nFull < je {
		gemmInt8GoPart(dst, a, b, n, k, r0, r1, jb+nFull, je, pb, pe)
	}
}

// packPanelInt8 packs B rows [pb,pe) × cols [jb,jfullEnd) — a whole number of
// 16-column strips over a whole number of K-quads — strip-major, then
// quad-major, then column-major within the quad: the four K bytes of each
// column land contiguously, forming the dword lanes VPDPBUSD consumes.
// On the VNNI targets that consume packed panels, the interleave runs as a
// SIMD 4×16 byte transpose (packQuad16Asm); the scalar loop below is its
// portable reference, kept for the differential test.
func packPanelInt8(buf, b []uint8, n, pb, pe, jb, jfullEnd int) {
	if useInt8Asm {
		kq := (pe - pb) / 4
		if kq > 0 && (pe-pb)&3 == 0 {
			si := 0
			for js := jb; js < jfullEnd; js += gemmNR {
				packQuad16Asm(kq, n, &b[pb*n+js], &buf[si])
				si += 64 * kq
			}
			return
		}
	}
	packPanelInt8Go(buf, b, n, pb, pe, jb, jfullEnd)
}

func packPanelInt8Go(buf, b []uint8, n, pb, pe, jb, jfullEnd int) {
	si := 0
	for js := jb; js < jfullEnd; js += gemmNR {
		for p := pb; p < pe; p += 4 {
			r0 := b[p*n:]
			r1 := b[(p+1)*n:]
			r2 := b[(p+2)*n:]
			r3 := b[(p+3)*n:]
			for j := js; j < js+gemmNR; j++ {
				buf[si] = r0[j]
				buf[si+1] = r1[j]
				buf[si+2] = r2[j]
				buf[si+3] = r3[j]
				si += 4
			}
		}
	}
}

// gemmInt8GoPart is the portable kernel: a 4-row broadcast-AXPY in int32 over
// contiguous u8 B row segments, mirroring gemmGoPart.
func gemmInt8GoPart(dst []int32, a []int8, b []uint8, n, k, r0, r1, jb, je, pb, pe int) {
	i := r0
	for ; i+gemmMR <= r1; i += gemmMR {
		o0 := dst[i*n+jb : i*n+je]
		o1 := dst[(i+1)*n+jb : (i+1)*n+je]
		o2 := dst[(i+2)*n+jb : (i+2)*n+je]
		o3 := dst[(i+3)*n+jb : (i+3)*n+je]
		for p := pb; p < pe; p++ {
			brow := b[p*n+jb : p*n+je]
			a0 := int32(a[i*k+p])
			a1 := int32(a[(i+1)*k+p])
			a2 := int32(a[(i+2)*k+p])
			a3 := int32(a[(i+3)*k+p])
			for j, bv := range brow {
				bi := int32(bv)
				o0[j] += a0 * bi
				o1[j] += a1 * bi
				o2[j] += a2 * bi
				o3[j] += a3 * bi
			}
		}
	}
	for ; i < r1; i++ {
		o0 := dst[i*n+jb : i*n+je]
		for p := pb; p < pe; p++ {
			av := int32(a[i*k+p])
			if av == 0 {
				continue
			}
			brow := b[p*n+jb : p*n+je]
			for j, bv := range brow {
				o0[j] += av * int32(bv)
			}
		}
	}
}

// DotU8I8 returns the inner product Σ x[i]·w[i] of an unsigned activation
// vector and a signed weight vector in int32 — the quantized Linear layer's
// kernel. Uses VPDPBUSD when available; the scalar tail and fallback
// accumulate identically (exact integer arithmetic).
func DotU8I8(x []uint8, w []int8) int32 {
	if len(x) != len(w) {
		panic(fmt.Sprintf("tensor: DotU8I8 length mismatch %d vs %d", len(x), len(w)))
	}
	k := len(x)
	var s int32
	wide := 0
	if useInt8Asm {
		wide = k / 32 * 32
		if wide > 0 {
			s = dotU8I8Asm(wide, &x[0], &w[0])
		}
	}
	for p := wide; p < k; p++ {
		s += int32(x[p]) * int32(w[p])
	}
	return s
}

// RoundAway rounds half away from zero — the single rounding rule used by
// every quantize/requantize step in the int8 datapath, so scales computed at
// calibration time describe the serving arithmetic exactly.
func RoundAway(v float32) int32 {
	if v >= 0 {
		return int32(v + 0.5)
	}
	return int32(v - 0.5)
}

// QuantizeU8 writes dst[i] = clamp(round(src[i]/scale) + zero, 0, 255): the
// float→u8 entry conversion of a quantized segment. scale must be positive.
func QuantizeU8(dst []uint8, src []float32, scale float32, zero uint8) {
	if len(dst) < len(src) {
		panic("tensor: QuantizeU8 dst too short")
	}
	inv := 1 / scale
	z := int32(zero)
	start := 0
	if useInt8Asm {
		if n8 := len(src) &^ 7; n8 > 0 {
			quantU8Asm(n8, &src[0], &dst[0], inv, z)
			start = n8
		}
	}
	for i := start; i < len(src); i++ {
		q := RoundAway(src[i]*inv) + z
		if q < 0 {
			q = 0
		} else if q > 255 {
			q = 255
		}
		dst[i] = uint8(q)
	}
}

// DequantizeU8 writes dst[i] = scale * (src[i] - zero): the u8→float exit
// conversion of a quantized segment.
func DequantizeU8(dst []float32, src []uint8, scale float32, zero uint8) {
	if len(dst) < len(src) {
		panic("tensor: DequantizeU8 dst too short")
	}
	z := int32(zero)
	start := 0
	if useInt8Asm {
		if n8 := len(src) &^ 7; n8 > 0 {
			dequantU8Asm(n8, &src[0], &dst[0], scale, z)
			start = n8
		}
	}
	for i := start; i < len(src); i++ {
		dst[i] = scale * float32(int32(src[i])-z)
	}
}

// RequantizeU8Row maps one row of int32 GEMM accumulators back to u8:
//
//	dst[j] = clamp(round(float32(acc[j]+bias) * scale) + zero, lo, hi)
//
// bias carries the folded layer bias and the activation zero-point
// correction; [lo,hi] carries the fused activation clamp (ReLU → [zero,255],
// ReLU6 → [zero, q(6)], none → [0,255]). scale is the per-output-channel
// requantization multiplier sIn·sW/sOut.
func RequantizeU8Row(dst []uint8, acc []int32, bias int32, scale float32, zero, lo, hi uint8) {
	if len(dst) < len(acc) {
		panic("tensor: RequantizeU8Row dst too short")
	}
	z := int32(zero)
	l, h := int32(lo), int32(hi)
	start := 0
	if useInt8Asm {
		if n8 := len(acc) &^ 7; n8 > 0 {
			requantU8Asm(n8, &acc[0], &dst[0], bias, scale, z, l, h)
			start = n8
		}
	}
	for j := start; j < len(acc); j++ {
		q := RoundAway(float32(acc[j]+bias)*scale) + z
		if q < l {
			q = l
		} else if q > h {
			q = h
		}
		dst[j] = uint8(q)
	}
}

// Im2ColU8 expands one u8 image (C×H×W, flattened in x) into the
// (C*KH*KW) × (OutH*OutW) column matrix, exactly as Im2Col does for floats,
// except padding positions take the value pad — the activation zero-point,
// which represents real 0.0 in the quantized domain.
func Im2ColU8(g ConvGeom, x, cols []uint8, pad uint8) {
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	nOut := outH * outW
	if len(cols) < rows*nOut {
		panic(fmt.Sprintf("tensor: Im2ColU8 cols %d, want %d", len(cols), rows*nOut))
	}
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := ((c*g.KH+kh)*g.KW + kw) * nOut
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					dstBase := row + oh*outW
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < outW; ow++ {
							cols[dstBase+ow] = pad
						}
						continue
					}
					srcBase := chanBase + ih*g.InW
					if g.StrideW == 1 {
						// iw = ow - PadW + kw is in bounds on [owLo, owHi):
						// one bulk copy flanked by pad fills.
						owLo := max(0, g.PadW-kw)
						owHi := min(outW, g.InW+g.PadW-kw)
						owHi = max(owHi, owLo)
						for ow := 0; ow < owLo; ow++ {
							cols[dstBase+ow] = pad
						}
						s := srcBase + owLo - g.PadW + kw
						copy(cols[dstBase+owLo:dstBase+owHi], x[s:s+owHi-owLo])
						for ow := owHi; ow < outW; ow++ {
							cols[dstBase+ow] = pad
						}
						continue
					}
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							cols[dstBase+ow] = pad
						} else {
							cols[dstBase+ow] = x[srcBase+iw]
						}
					}
				}
			}
		}
	}
}
