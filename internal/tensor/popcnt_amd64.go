package tensor

// usePopcntAsm gates the AVX2 VPSHUFB-LUT popcount kernels. Unlike the GEMM
// gate it does not require FMA — the kernels are integer-only — but it needs
// the same OS-managed YMM state checks.
var usePopcntAsm = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	_, _, c1, _ := cpuidex(1, 0)
	if c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 {
		return false
	}
	const avx2Bit = 1 << 5
	_, b7, _, _ := cpuidex(7, 0)
	return b7&avx2Bit != 0
}

// xorPopcntAsm returns Σ OnesCount64(a[w]^b[w]) over 4·groups words.
// groups must be ≥ 1.
//
//go:noescape
func xorPopcntAsm(groups int, a, b *uint64) int64

// xorMaskPopcntAsm returns Σ OnesCount64((q[w]^sgn[w])&msk[w]) over 4·groups
// words. groups must be ≥ 1.
//
//go:noescape
func xorMaskPopcntAsm(groups int, q, sgn, msk *uint64) int64
