package tensor

import "fmt"

// Row-tiled implicit-GEMM convolution: the fused extraction blocks compute a
// conv a handful of output rows at a time, into cache-resident tile buffers,
// reading only a row window of the input. Output tiling splits the GEMM's N
// dimension, which the blocked schedule already treats as embarrassingly
// independent, so the tiled product is bit-identical to ConvMulSerialInto on
// the full map:
//
//   - K blocking (the only arithmetic-relevant schedule: dst accumulates
//     across ascending gemmKC blocks) is unchanged.
//   - The asm/portable kernel split is kept on the GLOBAL column grid: a
//     column runs the 16-wide asm micro-kernel iff it lies in the full map's
//     [0, ⌊nOut/16⌋·16) region, regardless of where the tile boundaries
//     fall. Tiles whose edges cut through a 16-strip compute the whole strip
//     into a small spill buffer and copy out only the lanes they own — the
//     per-lane FMA chains are identical, so the spilled lanes match the
//     in-place ones bit for bit.
//   - Strip grouping within a K block has no arithmetic effect (each strip's
//     accumulation is independent), so tiles may chunk the interior strips
//     differently from the full-map schedule.
//
// TestConvMulRowsMatchesSerial pins tiled == full across random geometries,
// ragged tile splits, and row windows.

// ConvTileScratch returns the float32 scratch length ConvMulRowsInto needs
// for a conv with outC output channels: a packed panel, a dense/strip tail
// tile, and an [outC, 16] spill buffer for strips cut by tile edges.
func ConvTileScratch(outC int) int {
	if useGemmAsm {
		return gemmKC*gemmNC + gemmKC*gemmNR + outC*gemmNR
	}
	return gemmKC * gemmNC
}

// ConvMulRowsInto computes output rows [or0, or1) of the implicit-GEMM conv
// wmat(OutC × C·KH·KW) @ im2col(g, ·) — i.e. columns [or0·OutW, or1·OutW) of
// the full product — writing element (oc, j) to dst[oc·ldd + dstOff + j −
// or0·OutW]. x holds input rows [xRow0, xRow0+xRows) of each channel plane
// (channel stride xRows·InW) and must cover every in-bounds row the
// requested output rows read. Strictly serial, zero heap allocations;
// scratch needs ConvTileScratch(OutC) floats. Bit-identical to the same
// region of ConvMulSerialInto.
func ConvMulRowsInto(dst []float32, ldd, dstOff int, wmat *Tensor, g ConvGeom,
	x []float32, xRow0, xRows, or0, or1 int, scratch []float32) {
	kdim := g.InC * g.KH * g.KW
	outW := g.OutW()
	nOut := g.OutH() * outW
	if wmat.Rank() != 2 || wmat.Shape[1] != kdim {
		panic(fmt.Sprintf("tensor: ConvMulRows weight shape %v, want [*, %d]", wmat.Shape, kdim))
	}
	m := wmat.Shape[0]
	if or0 < 0 || or1 > g.OutH() || or0 > or1 {
		panic(fmt.Sprintf("tensor: ConvMulRows rows [%d, %d) outside [0, %d)", or0, or1, g.OutH()))
	}
	if len(scratch) < ConvTileScratch(m) {
		panic(fmt.Sprintf("tensor: ConvMulRows scratch %d < ConvTileScratch %d", len(scratch), ConvTileScratch(m)))
	}
	c0, c1 := or0*outW, or1*outW
	width := c1 - c0
	if width == 0 || m == 0 {
		return
	}
	a := wmat.Data
	for i := 0; i < m; i++ {
		clear(dst[i*ldd+dstOff : i*ldd+dstOff+width])
	}
	if !useGemmAsm {
		for jb := c0; jb < c1; jb += gemmNC {
			je := min(jb+gemmNC, c1)
			w := je - jb
			for pb := 0; pb < kdim; pb += gemmKC {
				pe := min(pb+gemmKC, kdim)
				kc := pe - pb
				tile := scratch[:kc*w]
				im2colTile(g, x, xRow0, xRows, tile, w, pb, pe, jb, je)
				goPanelPart(dst, a, tile, ldd, kdim, w, m, pb, pe, pb, dstOff+jb-c0, 0, w)
			}
		}
		return
	}
	// Asm path. Column regions on the global grid:
	//   [c0, headEnd)   partial head strip (c0 not 16-aligned) → spill
	//   [headEnd, intEnd) whole 16-strips → packed panels in place
	//   [intEnd, cm)    partial tail strip → spill
	//   [max(c0,n16), c1) global ragged tail → portable kernel
	n16 := nOut &^ (gemmNR - 1)
	cm := min(c1, n16)
	if c0 < cm {
		headEnd := min((c0+gemmNR-1)&^(gemmNR-1), cm)
		intEnd := max(cm&^(gemmNR-1), headEnd)
		for jb := headEnd; jb < intEnd; jb += gemmNC {
			je := min(jb+gemmNC, intEnd)
			nFull := je - jb // multiple of gemmNR
			for pb := 0; pb < kdim; pb += gemmKC {
				pe := min(pb+gemmKC, kdim)
				kc := pe - pb
				panel := scratch[:gemmKC*gemmNC]
				convPackStrips(g, x, xRow0, xRows, panel, pb, pe, jb, nFull)
				base := dstOff + jb - c0
				i := 0
				for ; i+gemmMR <= m; i += gemmMR {
					for js := 0; js < nFull; js += gemmNR {
						strip := panel[js*kc:]
						gemm4x16(kc,
							&a[i*kdim+pb], &a[(i+1)*kdim+pb], &a[(i+2)*kdim+pb], &a[(i+3)*kdim+pb],
							&strip[0],
							&dst[i*ldd+base+js], &dst[(i+1)*ldd+base+js],
							&dst[(i+2)*ldd+base+js], &dst[(i+3)*ldd+base+js])
					}
				}
				for ; i < m; i++ {
					gemm1x16s(kc, nFull/gemmNR, &a[i*kdim+pb], &panel[0], &dst[i*ldd+base])
				}
			}
		}
		if c0 < headEnd && headEnd-c0 < gemmNR {
			convSpillStrip(dst, ldd, dstOff, a, g, x, xRow0, xRows, m, kdim, c0&^(gemmNR-1), c0, headEnd, c0, scratch)
		}
		if intEnd < cm {
			convSpillStrip(dst, ldd, dstOff, a, g, x, xRow0, xRows, m, kdim, intEnd, intEnd, cm, c0, scratch)
		}
	}
	if t0 := max(c0, n16); t0 < c1 {
		tw := c1 - t0
		for pb := 0; pb < kdim; pb += gemmKC {
			pe := min(pb+gemmKC, kdim)
			kc := pe - pb
			tile := scratch[gemmKC*gemmNC : gemmKC*gemmNC+kc*tw]
			im2colTile(g, x, xRow0, xRows, tile, tw, pb, pe, t0, c1)
			goPanelPart(dst, a, tile, ldd, kdim, tw, m, pb, pe, pb, dstOff+t0-c0, 0, tw)
		}
	}
}

// convSpillStrip computes the full 16-column strip starting at global column
// strip0 into an [m, 16] spill buffer — running exactly the kernels and K
// schedule the full-map product runs for that strip — then copies lanes
// [lo, hi) into dst (tile origin column tileC0). Strips cut by a tile edge
// thus stay bit-identical to their uncut counterparts.
func convSpillStrip(dst []float32, ldd, dstOff int, a []float32, g ConvGeom,
	x []float32, xRow0, xRows, m, kdim, strip0, lo, hi, tileC0 int, scratch []float32) {
	spill := scratch[gemmKC*gemmNC+gemmKC*gemmNR : gemmKC*gemmNC+gemmKC*gemmNR+m*gemmNR]
	clear(spill)
	for pb := 0; pb < kdim; pb += gemmKC {
		pe := min(pb+gemmKC, kdim)
		kc := pe - pb
		panel := scratch[gemmKC*gemmNC : gemmKC*gemmNC+kc*gemmNR]
		convPackStrips(g, x, xRow0, xRows, panel, pb, pe, strip0, gemmNR)
		i := 0
		for ; i+gemmMR <= m; i += gemmMR {
			gemm4x16(kc,
				&a[i*kdim+pb], &a[(i+1)*kdim+pb], &a[(i+2)*kdim+pb], &a[(i+3)*kdim+pb],
				&panel[0],
				&spill[i*gemmNR], &spill[(i+1)*gemmNR], &spill[(i+2)*gemmNR], &spill[(i+3)*gemmNR])
		}
		for ; i < m; i++ {
			gemm1x16s(kc, 1, &a[i*kdim+pb], &panel[0], &spill[i*gemmNR])
		}
	}
	for i := 0; i < m; i++ {
		copy(dst[i*ldd+dstOff+lo-tileC0:i*ldd+dstOff+hi-tileC0], spill[i*gemmNR+lo-strip0:i*gemmNR+hi-strip0])
	}
}

// Im2ColU8Rows writes the columns of the u8 im2col matrix belonging to conv
// output rows [or0, or1) into cols, row-major with leading dimension
// (or1−or0)·OutW. Values are exactly the corresponding region of Im2ColU8
// (pad at padding positions). x holds input rows [xRow0, xRow0+xRows) of
// each channel plane with channel stride xRows·InW, as in convPackStrips.
// The int8 GEMM is exact integer arithmetic, so any row tiling of the conv
// built on this generator is trivially bit-exact.
func Im2ColU8Rows(g ConvGeom, x []uint8, xRow0, xRows int, cols []uint8, or0, or1 int, pad uint8) {
	outW := g.OutW()
	ld := (or1 - or0) * outW
	rows := g.InC * g.KH * g.KW
	if len(cols) < rows*ld {
		panic(fmt.Sprintf("tensor: Im2ColU8Rows cols %d, want %d", len(cols), rows*ld))
	}
	for c := 0; c < g.InC; c++ {
		chanBase := (c*xRows - xRow0) * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := ((c*g.KH+kh)*g.KW + kw) * ld
				for oh := or0; oh < or1; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					dstBase := row + (oh-or0)*outW
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < outW; ow++ {
							cols[dstBase+ow] = pad
						}
						continue
					}
					srcBase := chanBase + ih*g.InW
					if g.StrideW == 1 {
						owLo := max(0, g.PadW-kw)
						owHi := min(outW, g.InW+g.PadW-kw)
						owHi = max(owHi, owLo)
						for ow := 0; ow < owLo; ow++ {
							cols[dstBase+ow] = pad
						}
						s := srcBase + owLo - g.PadW + kw
						copy(cols[dstBase+owLo:dstBase+owHi], x[s:s+owHi-owLo])
						for ow := owHi; ow < outW; ow++ {
							cols[dstBase+ow] = pad
						}
						continue
					}
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							cols[dstBase+ow] = pad
						} else {
							cols[dstBase+ow] = x[srcBase+iw]
						}
					}
				}
			}
		}
	}
}
