//go:build !amd64

package tensor

// Non-amd64 builds always use the scalar bits.OnesCount64 loop.
const usePopcntAsm = false

func xorPopcntAsm(groups int, a, b *uint64) int64 {
	panic("tensor: xorPopcntAsm requires amd64")
}

func xorMaskPopcntAsm(groups int, q, sgn, msk *uint64) int64 {
	panic("tensor: xorMaskPopcntAsm requires amd64")
}
