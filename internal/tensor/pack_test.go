package tensor

import (
	"math"
	"testing"
)

// TestPackSignsMatchesGeneric cross-checks the vectorized sign packer against
// the portable word builder, including -0, NaN, exact zeros, and ragged tails.
func TestPackSignsMatchesGeneric(t *testing.T) {
	rng := NewRNG(17)
	for _, n := range []int{0, 1, 7, 63, 64, 65, 128, 192, 1000, 4096, 10007} {
		row := make([]float32, n)
		for i := range row {
			row[i] = float32(rng.NormFloat64())
		}
		// Plant special values the sign convention must get right.
		for i := 0; i+5 < n; i += 5 {
			switch i % 20 {
			case 0:
				row[i] = 0
			case 5:
				row[i] = float32(math.Copysign(0, -1)) // -0 packs as non-negative
			case 10:
				row[i] = float32(math.NaN()) // NaN is not < 0
			}
		}
		nw := (n + 63) / 64
		got := make([]uint64, nw)
		want := make([]uint64, nw)
		PackSignsInto(got, row)
		// Reference: one bit at a time straight from the comparison.
		for i, v := range row {
			if v < 0 {
				want[i/64] |= 1 << (i % 64)
			}
		}
		for w := range want {
			if got[w] != want[w] {
				t.Fatalf("n=%d word %d: got %016x want %016x", n, w, got[w], want[w])
			}
		}
	}
}

func BenchmarkPackSigns(b *testing.B) {
	row := make([]float32, 10000)
	NewRNG(1).FillNormal(FromSlice(row, 10000), 0, 1)
	words := make([]uint64, (len(row)+63)/64)
	b.SetBytes(int64(len(row) * 4))
	for i := 0; i < b.N; i++ {
		PackSignsInto(words, row)
	}
}
