package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapesAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Rank() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape metadata: %v", x.Shape)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-initialize")
		}
	}
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := x.Data[2*4+1]; got != 7.5 {
		t.Fatalf("row-major layout violated: flat value %v", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	x.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	x.Data[5] = 3
	y := x.Reshape(3, 4)
	if y.Data[5] != 3 {
		t.Fatal("Reshape must alias underlying data")
	}
	y.Data[0] = 9
	if x.Data[0] != 9 {
		t.Fatal("write through reshaped tensor not visible in original")
	}
}

func TestReshapeInfer(t *testing.T) {
	x := New(4, 6)
	y := x.Reshape(2, -1)
	if y.Shape[1] != 12 {
		t.Fatalf("inferred dim = %d, want 12", y.Shape[1])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reshaping to incompatible shape")
		}
	}()
	x.Reshape(5, -1)
}

func TestCloneIndependence(t *testing.T) {
	x := New(3)
	x.Fill(2)
	y := x.Clone()
	y.Data[0] = -1
	if x.Data[0] != 2 {
		t.Fatal("Clone must not share data")
	}
}

func TestSumMeanStd(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 4)
	if got := x.Sum(); got != 10 {
		t.Fatalf("Sum = %v", got)
	}
	if got := x.Mean(); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	want := math.Sqrt(1.25)
	if got := x.Std(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Std = %v, want %v", got, want)
	}
}

func TestMaxMinArgmax(t *testing.T) {
	x := FromSlice([]float32{3, -1, 7, 7, 0}, 5)
	if v, i := x.Max(); v != 7 || i != 2 {
		t.Fatalf("Max = %v@%d, want 7@2 (first occurrence)", v, i)
	}
	if v, i := x.Min(); v != -1 || i != 1 {
		t.Fatalf("Min = %v@%d", v, i)
	}
	if x.Argmax() != 2 {
		t.Fatal("Argmax mismatch")
	}
}

func TestRowAliases(t *testing.T) {
	x := New(2, 3)
	r := x.Row(1)
	r[0] = 5
	if x.At(1, 0) != 5 {
		t.Fatal("Row must alias tensor data")
	}
}

func TestApplyMap(t *testing.T) {
	x := FromSlice([]float32{1, -2}, 2)
	y := x.Map(func(v float32) float32 { return v * v })
	if y.Data[0] != 1 || y.Data[1] != 4 {
		t.Fatalf("Map result %v", y.Data)
	}
	if x.Data[1] != -2 {
		t.Fatal("Map must not mutate receiver")
	}
	x.Apply(func(v float32) float32 { return -v })
	if x.Data[1] != 2 {
		t.Fatal("Apply must mutate in place")
	}
}

func TestClamp(t *testing.T) {
	x := FromSlice([]float32{-5, 0.5, 5}, 3)
	x.Clamp(-1, 1)
	if x.Data[0] != -1 || x.Data[1] != 0.5 || x.Data[2] != 1 {
		t.Fatalf("Clamp result %v", x.Data)
	}
}

func TestL2Norm(t *testing.T) {
	x := FromSlice([]float32{3, 4}, 2)
	if got := x.L2Norm(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("L2Norm = %v", got)
	}
}

// Property: for any data, Reshape preserves the multiset of values and Sum.
func TestReshapePreservesSumProperty(t *testing.T) {
	f := func(vals []float32) bool {
		n := len(vals)
		if n == 0 {
			return true
		}
		x := FromSlice(append([]float32(nil), vals...), n)
		y := x.Reshape(1, n)
		return math.Abs(x.Sum()-y.Sum()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
