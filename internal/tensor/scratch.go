package tensor

import "sync"

// floatPool recycles float32 workspaces across training steps. Training-side
// kernels (im2col column matrices, gradient column buffers, transposed
// operands) need large transient buffers on every step; serving solved this
// with frozen arenas, but training shapes vary batch to batch, so a sync.Pool
// of grow-only buffers is the right tool: steady-state steps reuse warm
// buffers, odd-sized tail batches slice them short, and idle memory is
// reclaimed by the GC.
var floatPool = sync.Pool{New: func() any { return new([]float32) }}

// poolMaxFloats caps the capacity of slabs the pool retains (64 MiB of
// float32s). One huge one-off request — a debug full-batch im2col, an
// oversized eval — would otherwise park its slab in the pool, where the GC
// can keep it alive across cycles and every later Get hands the giant buffer
// to small requests. Outliers above the cap are simply left for the GC.
const poolMaxFloats = 1 << 24

// GetFloats returns a float32 scratch buffer of length n with UNDEFINED
// contents, recycled across calls. Return it with PutFloats when done. A
// pooled buffer whose capacity is too small is discarded (the GC reclaims
// it); over a few steps the pool converges to buffers sized for the largest
// recurring request, which smaller requests slice down.
func GetFloats(n int) []float32 {
	p := floatPool.Get().(*[]float32)
	if cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float32, n)
}

// PutFloats returns a buffer obtained from GetFloats to the pool. The caller
// must not use buf afterwards.
func PutFloats(buf []float32) {
	if cap(buf) == 0 || cap(buf) > poolMaxFloats {
		return
	}
	buf = buf[:cap(buf)]
	floatPool.Put(&buf)
}
