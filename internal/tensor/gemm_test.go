package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
)

func TestMain(m *testing.M) {
	// Give the pool several workers even on 1-CPU machines so the parallel
	// GEMM decomposition is actually exercised by these tests.
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	m.Run()
}

func randMat(seed int64, m, n int) *Tensor {
	t := New(m, n)
	NewRNG(seed).FillNormal(t, 0, 1)
	return t
}

// maxRelDiff returns the largest elementwise |x-y| / max(1, |x|).
func maxRelDiff(x, y *Tensor) float64 {
	worst := 0.0
	for i, v := range x.Data {
		d := math.Abs(float64(v - y.Data[i]))
		if a := math.Abs(float64(v)); a > 1 {
			d /= a
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// gemmShapes are the pipeline-representative shapes: conv im2col products,
// HD random projection, similarity scoring, plus tail-heavy odd sizes.
var gemmShapes = []struct{ m, n, k int }{
	{1, 1, 1},
	{3, 5, 7},
	{4, 4, 4},
	{5, 9, 3},
	{32, 1024, 27},   // conv2d: wmat @ cols
	{64, 3000, 100},  // projection EncodeBatch
	{64, 10, 3000},   // similarity scoring (via MatMulT layout too)
	{130, 257, 300},  // K block boundary + tails in every dimension
	{257, 63, 513},   // K > gemmKC, N tail
	{100, 300, 1000}, // multiple K blocks
}

func TestMatMulMatchesNaive(t *testing.T) {
	for _, s := range gemmShapes {
		a := randMat(int64(s.m*7+s.k), s.m, s.k)
		b := randMat(int64(s.n*13+s.k), s.k, s.n)
		got := New(s.m, s.n)
		want := New(s.m, s.n)
		MatMulInto(got, a, b)
		MatMulNaiveInto(want, a, b)
		// The blocked kernel regroups the K-sum per gemmKC block, so float32
		// results differ from the naive linear sum by O(√K·ε).
		tol := 1e-6 * (4 + math.Sqrt(float64(s.k))*4)
		if d := maxRelDiff(want, got); d > tol {
			t.Errorf("shape %dx%dx%d: blocked vs naive rel diff %g > %g", s.m, s.n, s.k, d, tol)
		}
	}
}

func TestMatMulSparseMatchesNaive(t *testing.T) {
	a := randMat(3, 65, 120)
	// Zero out most of a so the sparse path's skip branch is exercised.
	for i := range a.Data {
		if i%5 != 0 {
			a.Data[i] = 0
		}
	}
	b := randMat(4, 120, 90)
	got := New(65, 90)
	want := New(65, 90)
	MatMulSparseInto(got, a, b)
	MatMulNaiveInto(want, a, b)
	if d := maxRelDiff(want, got); d > 2e-5 {
		t.Errorf("sparse vs naive rel diff %g", d)
	}
}

// TestMatMulSerialParallelIdentical asserts the chunk decomposition does not
// change results at all: the parallel kernel must be bit-exact against a
// single serial gemmRange over the whole output (chunk-boundary bugs and
// accumulation-order drift both fail this).
func TestMatMulSerialParallelIdentical(t *testing.T) {
	for _, s := range gemmShapes {
		a := randMat(int64(s.m+s.k), s.m, s.k)
		b := randMat(int64(s.n-s.k), s.k, s.n)
		serial := New(s.m, s.n)
		gemmRange(serial.Data, a.Data, b.Data, s.n, s.k, 0, s.m, 0, s.n)
		viaAPI := MatMul(a, b)
		for i := range serial.Data {
			if serial.Data[i] != viaAPI.Data[i] {
				t.Fatalf("shape %dx%dx%d: serial and parallel differ at %d: %v vs %v",
					s.m, s.n, s.k, i, serial.Data[i], viaAPI.Data[i])
			}
		}
	}
}

// TestGemmSplitTilesExactly runs every job of the parallel decomposition
// concurrently (one goroutine per tile, far finer than the pool would use)
// and checks the assembled result is bit-exact against serial execution.
func TestGemmSplitTilesExactly(t *testing.T) {
	for _, workers := range []int{2, 3, 8, 64} {
		for _, s := range gemmShapes {
			jobs := gemmSplit(s.m, s.n, s.k, workers)
			// Every output cell must belong to exactly one job.
			covered := make([]int, s.m*s.n)
			for _, j := range jobs {
				if j.r0 < 0 || j.r1 > s.m || j.c0 < 0 || j.c1 > s.n || j.r0 >= j.r1 || j.c0 >= j.c1 {
					t.Fatalf("workers=%d shape %v: bad job %+v", workers, s, j)
				}
				for r := j.r0; r < j.r1; r++ {
					for c := j.c0; c < j.c1; c++ {
						covered[r*s.n+c]++
					}
				}
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("workers=%d shape %v: cell %d covered %d times", workers, s, i, c)
				}
			}
			a := randMat(int64(workers+s.m), s.m, s.k)
			b := randMat(int64(workers+s.n), s.k, s.n)
			serial := New(s.m, s.n)
			gemmRange(serial.Data, a.Data, b.Data, s.n, s.k, 0, s.m, 0, s.n)
			tiled := New(s.m, s.n)
			var wg sync.WaitGroup
			for _, j := range jobs {
				wg.Add(1)
				go func(j gemmJob) {
					defer wg.Done()
					gemmRange(tiled.Data, a.Data, b.Data, s.n, s.k, j.r0, j.r1, j.c0, j.c1)
				}(j)
			}
			wg.Wait()
			for i := range serial.Data {
				if serial.Data[i] != tiled.Data[i] {
					t.Fatalf("workers=%d shape %v: tile decomposition changed element %d", workers, s, i)
				}
			}
		}
	}
}

func TestMatMulTMatchesDotReference(t *testing.T) {
	for _, s := range []struct{ m, n, k int }{
		{1, 1, 1}, {3, 5, 7}, {64, 10, 3000}, {63, 9, 250}, {130, 130, 65},
	} {
		a := randMat(int64(s.m), s.m, s.k)
		b := randMat(int64(s.n), s.n, s.k)
		got := MatMulT(a, b)
		// The vectorized dot kernel uses fused multiply-adds and 8-lane
		// partial sums, so it differs from the scalar reference by rounding
		// only (O(√K·ε)); serial-vs-parallel determinism is covered below.
		tol := 1e-6 * (4 + math.Sqrt(float64(s.k))*4)
		for i := 0; i < s.m; i++ {
			for j := 0; j < s.n; j++ {
				want := float64(Dot(a.Row(i), b.Row(j)))
				d := math.Abs(float64(got.At(i, j)) - want)
				if a := math.Abs(want); a > 1 {
					d /= a
				}
				if d > tol {
					t.Fatalf("shape %v: [%d,%d] = %v, want %v (rel diff %g > %g)", s, i, j, got.At(i, j), want, d, tol)
				}
			}
		}
	}
}

// TestMatMulTSerialParallelIdentical: the parallel row split must not change
// any output bit versus a single serial pass.
func TestMatMulTSerialParallelIdentical(t *testing.T) {
	a := randMat(11, 130, 999)
	b := randMat(12, 37, 999)
	got := MatMulT(a, b)
	serial := New(130, 37)
	matMulTRange(serial.Data, a.Data, b.Data, 37, 999, 0, 130)
	for i := range serial.Data {
		if serial.Data[i] != got.Data[i] {
			t.Fatalf("serial and parallel MatMulT differ at %d", i)
		}
	}
}

func TestTransposeBlocked(t *testing.T) {
	for _, s := range []struct{ m, n int }{
		{1, 1}, {1, 7}, {7, 1}, {31, 33}, {32, 32}, {100, 257}, {513, 129},
	} {
		a := randMat(int64(s.m*s.n), s.m, s.n)
		tr := Transpose(a)
		if tr.Shape[0] != s.n || tr.Shape[1] != s.m {
			t.Fatalf("Transpose shape %v", tr.Shape)
		}
		for i := 0; i < s.m; i++ {
			for j := 0; j < s.n; j++ {
				if tr.At(j, i) != a.At(i, j) {
					t.Fatalf("%dx%d: [%d,%d] mismatch", s.m, s.n, i, j)
				}
			}
		}
	}
}

// TestParallelKernelsRaceClean hammers MatMulInto / MatMulT / ParallelFor
// from many goroutines at once; meaningful under -race.
func TestParallelKernelsRaceClean(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			a := randMat(seed, 40, 300)
			b := randMat(seed+1, 300, 50)
			bt := randMat(seed+2, 50, 300)
			dst := New(40, 50)
			for r := 0; r < 5; r++ {
				MatMulInto(dst, a, b)
				MatMulT(a, bt)
				total := make([]float32, 128)
				ParallelFor(128, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						total[i] = float32(i) + a.Data[i%len(a.Data)]
					}
				})
			}
		}(int64(g * 101))
	}
	wg.Wait()
}

// --- microbenchmarks: blocked vs seed-naive on pipeline shapes ---

func benchShapes() []struct {
	name    string
	m, n, k int
} {
	return []struct {
		name    string
		m, n, k int
	}{
		{"conv_32x1024x27", 32, 1024, 27},
		{"proj_64x3000x100", 64, 3000, 100},
		{"sim_64x10x3000", 64, 10, 3000},
		{"square_256", 256, 256, 256},
	}
}

func BenchmarkGEMM(b *testing.B) {
	for _, s := range benchShapes() {
		a := randMat(1, s.m, s.k)
		bb := randMat(2, s.k, s.n)
		dst := New(s.m, s.n)
		flops := float64(2 * s.m * s.n * s.k)
		b.Run(s.name+"/naive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMulNaiveInto(dst, a, bb)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
		})
		b.Run(s.name+"/blocked", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, a, bb)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
		})
	}
}

func BenchmarkMatMulT(b *testing.B) {
	a := randMat(1, 64, 3000)
	bt := randMat(2, 10, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulT(a, bt)
	}
	b.ReportMetric(float64(2*64*10*3000*b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}

func BenchmarkTranspose(b *testing.B) {
	for _, n := range []int{256, 1024} {
		a := randMat(3, n, n)
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Transpose(a)
			}
			b.SetBytes(int64(n * n * 4 * 2))
		})
	}
}
