package tensor

import (
	"fmt"
	"math"

	"nshd/internal/parallel"
)

// AddInto computes dst = a + b elementwise. All three must share a shape
// (dst may alias a or b).
func AddInto(dst, a, b *Tensor) {
	checkSame3(dst, a, b, "AddInto")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	out := New(a.Shape...)
	AddInto(out, a, b)
	return out
}

// SubInto computes dst = a - b elementwise.
func SubInto(dst, a, b *Tensor) {
	checkSame3(dst, a, b, "SubInto")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	out := New(a.Shape...)
	SubInto(out, a, b)
	return out
}

// MulInto computes dst = a * b elementwise (Hadamard product).
func MulInto(dst, a, b *Tensor) {
	checkSame3(dst, a, b, "MulInto")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Mul returns the elementwise product a * b.
func Mul(a, b *Tensor) *Tensor {
	out := New(a.Shape...)
	MulInto(out, a, b)
	return out
}

// Scale multiplies every element of t by s in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AXPY computes t += alpha*x elementwise in place.
func (t *Tensor) AXPY(alpha float32, x *Tensor) {
	if !t.SameShape(x) {
		panic(fmt.Sprintf("tensor: AXPY shape mismatch %v vs %v", t.Shape, x.Shape))
	}
	for i := range t.Data {
		t.Data[i] += alpha * x.Data[i]
	}
}

func checkSame3(dst, a, b *Tensor, op string) {
	if !dst.SameShape(a) || !dst.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v %v %v", op, dst.Shape, a.Shape, b.Shape))
	}
}

// Dot returns the inner product of a and b, which must have equal lengths.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float32
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// TransposeMatMul returns aᵀ(K×M) @ b(K×N) = M×N. Used for gradient
// accumulation (e.g. weight gradients from input and output deltas). The
// zero-skip branch is kept deliberately: the update matrices flowing through
// this path are genuinely sparse (correctly-classified samples contribute
// zero rows), so the branch wins where it would lose in the dense GEMM.
func TransposeMatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: TransposeMatMul shape mismatch %vᵀ @ %v", a.Shape, b.Shape))
	}
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// TransposeMatMulInto computes dst = aᵀ(K×M) @ b(K×N) through the blocked
// parallel GEMM: a is transposed into scratch (length ≥ a.Len(); a fresh
// buffer is taken from the float pool when scratch is too short) and the
// product runs on MatMulInto. This is the dense fast path for rank-K
// gradient/retraining updates — one batched similarity-shaped GEMM instead of
// the zero-skip scalar loop of TransposeMatMul, which remains the right call
// for genuinely sparse update matrices. Deterministic: the transpose is a
// bit-copy and the GEMM's accumulation schedule is split-invariant.
func TransposeMatMulInto(dst, a, b *Tensor, scratch []float32) {
	if a.Rank() != 2 || b.Rank() != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: TransposeMatMul shape mismatch %vᵀ @ %v", a.Shape, b.Shape))
	}
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: TransposeMatMulInto dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	var put bool
	if len(scratch) < k*m {
		scratch = GetFloats(k * m)
		put = true
	}
	at := FromSlice(scratch[:m*k], m, k)
	TransposeInto(at, a)
	MatMulInto(dst, at, b)
	if put {
		PutFloats(scratch)
	}
}

// transposeBlock is the square tile edge used by Transpose. A 32×32 float32
// tile is 4 KiB — two tiles (source + destination working set) sit easily in
// L1, so both the row-strided reads and column-strided writes stay within
// cached lines instead of thrashing one line per element.
const transposeBlock = 32

// Transpose returns the transpose of a rank-2 tensor, copying cache-friendly
// square tiles; large matrices are tiled in parallel over row blocks.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires rank-2 tensor")
	}
	out := New(a.Shape[1], a.Shape[0])
	TransposeInto(out, a)
	return out
}

// TransposeInto writes aᵀ into a caller-owned dst with the same blocked-tile
// schedule as Transpose, so training loops can reuse one transpose buffer
// across steps.
func TransposeInto(dst, a *Tensor) {
	if a.Rank() != 2 || dst.Rank() != 2 {
		panic("tensor: Transpose requires rank-2 tensors")
	}
	m, n := a.Shape[0], a.Shape[1]
	if dst.Shape[0] != n || dst.Shape[1] != m {
		panic(fmt.Sprintf("tensor: TransposeInto dst shape %v, want [%d %d]", dst.Shape, n, m))
	}
	out := dst
	rowBlocks := (m + transposeBlock - 1) / transposeBlock
	// One task must move at least minParallelWork elements to be worth
	// dispatching.
	grain := 1 + minParallelWork/(transposeBlock*n+1)
	parallel.ForGrain(rowBlocks, grain, func(blo, bhi int) {
		for ib := blo * transposeBlock; ib < bhi*transposeBlock && ib < m; ib += transposeBlock {
			ie := ib + transposeBlock
			if ie > m {
				ie = m
			}
			for jb := 0; jb < n; jb += transposeBlock {
				je := jb + transposeBlock
				if je > n {
					je = n
				}
				for i := ib; i < ie; i++ {
					src := a.Data[i*n+jb : i*n+je]
					for jo, v := range src {
						out.Data[(jb+jo)*m+i] = v
					}
				}
			}
		}
	})
}

// Softmax writes the softmax of src into dst (both length n), using the
// max-subtraction trick for numerical stability.
func Softmax(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Softmax length mismatch")
	}
	if len(src) == 0 {
		return
	}
	maxv := src[0]
	for _, v := range src[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(float64(v - maxv))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1.0 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// SoftmaxT applies temperature-scaled softmax: softmax(src/T).
func SoftmaxT(dst, src []float32, temperature float64) {
	if temperature <= 0 {
		panic("tensor: SoftmaxT requires positive temperature")
	}
	tmp := make([]float32, len(src))
	for i, v := range src {
		tmp[i] = float32(float64(v) / temperature)
	}
	Softmax(dst, tmp)
}

// LogSumExp returns log(sum(exp(x))) computed stably.
func LogSumExp(x []float32) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	maxv := x[0]
	for _, v := range x[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var s float64
	for _, v := range x {
		s += math.Exp(float64(v - maxv))
	}
	return float64(maxv) + math.Log(s)
}

// ArgmaxRows returns the argmax of each row of a 2-D tensor.
func ArgmaxRows(t *Tensor) []int {
	if t.Rank() != 2 {
		panic("tensor: ArgmaxRows requires rank-2 tensor")
	}
	out := make([]int, t.Shape[0])
	for i := range out {
		row := t.Row(i)
		best, at := row[0], 0
		for j, v := range row {
			if v > best {
				best, at = v, j
			}
		}
		out[i] = at
	}
	return out
}

// Sign returns a tensor of -1/+1 elements matching sign(t); zero maps to +1
// (the convention used by bipolar hypervectors).
func Sign(t *Tensor) *Tensor {
	out := New(t.Shape...)
	for i, v := range t.Data {
		if v < 0 {
			out.Data[i] = -1
		} else {
			out.Data[i] = 1
		}
	}
	return out
}

// SignInto writes sign(src) into dst with the same zero→+1 convention as
// Sign. dst and src must share a shape; dst may alias src.
func SignInto(dst, src *Tensor) {
	if !dst.SameShape(src) {
		panic(fmt.Sprintf("tensor: SignInto shape mismatch %v vs %v", dst.Shape, src.Shape))
	}
	for i, v := range src.Data {
		if v < 0 {
			dst.Data[i] = -1
		} else {
			dst.Data[i] = 1
		}
	}
}

// ReLUInPlace clamps every element of x to max(v, 0) with exactly the
// semantics of `if v <= 0 { v = 0 }`: NaN passes through, -0 becomes +0. On
// amd64 with AVX the bulk runs in a masked vector kernel (bit-identical by
// construction — see reluAsm); the scalar loop handles the tail and other
// targets.
func ReLUInPlace(x []float32) {
	i := 0
	if useGemmAsm {
		if wide := len(x) / 8 * 8; wide > 0 {
			reluAsm(wide, &x[0])
			i = wide
		}
	}
	for ; i < len(x); i++ {
		if x[i] <= 0 {
			x[i] = 0
		}
	}
}

// AddScalarReLUInPlace adds b to every element of x and clamps the sum to
// max(v, 0), in one sweep, with exactly the per-element arithmetic of the
// separate passes `x[i] += b` then ReLUInPlace: the IEEE sum first, then the
// `if v <= 0 { v = 0 }` comparison (NaN sums pass through, -0 becomes +0).
// The fused extraction blocks use it as the conv bias + ReLU epilogue so the
// tile is swept once instead of twice.
func AddScalarReLUInPlace(x []float32, b float32) {
	i := 0
	if useGemmAsm {
		if wide := len(x) / 8 * 8; wide > 0 {
			addScalarReluAsm(wide, &x[0], b)
			i = wide
		}
	}
	for ; i < len(x); i++ {
		v := x[i] + b
		if v <= 0 {
			v = 0
		}
		x[i] = v
	}
}

// ArgmaxRowsInto writes the argmax of each row of a 2-D tensor into out
// (length = rows), with the same first-wins tie rule as ArgmaxRows.
func ArgmaxRowsInto(out []int, t *Tensor) {
	if t.Rank() != 2 {
		panic("tensor: ArgmaxRows requires rank-2 tensor")
	}
	if len(out) != t.Shape[0] {
		panic(fmt.Sprintf("tensor: ArgmaxRowsInto out length %d, want %d", len(out), t.Shape[0]))
	}
	for i := range out {
		row := t.Row(i)
		best, at := row[0], 0
		for j, v := range row {
			if v > best {
				best, at = v, j
			}
		}
		out[i] = at
	}
}

// Clamp limits every element of t to [lo, hi] in place.
func (t *Tensor) Clamp(lo, hi float32) {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
}

// ParallelFor splits [0,n) into contiguous chunks and runs kernel on each
// via the persistent worker pool, blocking until all complete. It is the
// exported hook the nn and hdc packages use to parallelize per-sample work;
// per-item cost is assumed to be large (a whole conv sample, a record
// encoding), so no work-size floor is applied.
func ParallelFor(n int, kernel func(lo, hi int)) {
	parallel.For(n, kernel)
}

// ParallelForGrain is ParallelFor with a minimum number of items per task,
// for callers whose per-item cost is small enough that flat chunking would
// lose to dispatch overhead.
func ParallelForGrain(n, grain int, kernel func(lo, hi int)) {
	parallel.ForGrain(n, grain, kernel)
}
