package tensor

import (
	"fmt"
	"math/bits"
)

// popcntAsmMinWords is the word count below which one scalar pass beats the
// vector kernel's setup (LUT loads, horizontal reduce). Var, not const, so
// tests can force both paths on any input length.
var popcntAsmMinWords = 8

// XorPopcount returns the Hamming distance between two packed bit vectors:
// Σ OnesCount64(a[w] ^ b[w]) over w < len(a). b may be longer than a; only
// its first len(a) words participate. The count is an exact integer, so the
// AVX2 kernel and the scalar fallback agree bit-for-bit on every input.
func XorPopcount(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		panic(fmt.Sprintf("tensor: XorPopcount length mismatch %d vs %d", n, len(b)))
	}
	w := 0
	var s int64
	if g := n / 4; usePopcntAsm && g > 0 && n >= popcntAsmMinWords {
		s = xorPopcntAsm(g, &a[0], &b[0])
		w = g * 4
	}
	for ; w < n; w++ {
		s += int64(bits.OnesCount64(a[w] ^ b[w]))
	}
	return int(s)
}

// XorMaskPopcount returns Σ OnesCount64((q[w] ^ sgn[w]) & msk[w]) over
// w < len(q) — the masked Hamming distance of the ternary scorer, counting
// sign disagreements only on unpruned dimensions. sgn and msk may be longer
// than q. Exact integer arithmetic on both paths.
func XorMaskPopcount(q, sgn, msk []uint64) int {
	n := len(q)
	if len(sgn) < n || len(msk) < n {
		panic(fmt.Sprintf("tensor: XorMaskPopcount length mismatch %d vs %d/%d", n, len(sgn), len(msk)))
	}
	w := 0
	var s int64
	if g := n / 4; usePopcntAsm && g > 0 && n >= popcntAsmMinWords {
		s = xorMaskPopcntAsm(g, &q[0], &sgn[0], &msk[0])
		w = g * 4
	}
	for ; w < n; w++ {
		s += int64(bits.OnesCount64((q[w] ^ sgn[w]) & msk[w]))
	}
	return int(s)
}
