package nshd_test

import (
	"math"
	"testing"

	"nshd"
)

// TestFacadeEndToEnd drives the whole public API surface at miniature scale:
// data generation, zoo construction, pretraining, NSHD assembly, training,
// persistence and the auxiliary analysis entry points.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := nshd.SynthConfig{Classes: 4, Train: 64, Test: 32, Size: 32, Noise: 0.25, Seed: 3}
	train, test := nshd.SynthCIFAR(cfg)
	means, stds := train.Normalize()
	test.ApplyNormalization(means, stds)

	zoo, err := nshd.BuildModel("mobilenetv2", 1, train.Classes)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := nshd.DefaultPretrainConfig()
	pcfg.Epochs = 2 // smoke-level training only
	if _, _, err := nshd.Pretrain(zoo, train, pcfg, nshd.NewRNG(7)); err != nil {
		t.Fatal(err)
	}

	mcfg := nshd.DefaultConfig(17, train.Classes)
	mcfg.D = 256
	mcfg.FHat = 16
	mcfg.Epochs = 2
	model, err := nshd.New(zoo, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Train(train, nil); err != nil {
		t.Fatal(err)
	}
	if acc := model.Accuracy(test); acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %v", acc)
	}

	// Baseline variant through the facade.
	if _, err := nshd.NewBaselineHD(zoo, mcfg); err != nil {
		t.Fatal(err)
	}

	// VanillaHD through the facade.
	vcfg := nshd.DefaultVanillaConfig()
	vcfg.D = 256
	vcfg.Epochs = 1
	van, err := nshd.NewVanillaHD(train, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := van.Train(train, nil); err != nil {
		t.Fatal(err)
	}

	// Persistence round trip.
	path := t.TempDir() + "/m.gob"
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := nshd.LoadPipeline(path)
	if err != nil {
		t.Fatal(err)
	}
	a, b := model.Predict(test.Images), back.Predict(test.Images)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("reloaded pipeline diverges")
		}
	}

	// Hardware models.
	if err := nshd.XavierModel().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := nshd.DefaultDPU().Validate(); err != nil {
		t.Fatal(err)
	}

	// HD algebra helpers.
	rng := nshd.NewRNG(11)
	x, y := nshd.RandomBipolar(rng, 512), nshd.RandomBipolar(rng, 512)
	if got := nshd.Dot(nshd.Bind(x, y), nshd.Bind(x, y)); got != 512 {
		t.Fatalf("bind self-dot = %v", got)
	}
	sum := nshd.Bundle(x, y)
	if math.Abs(nshd.Dot(sum, x)-512) > 512 {
		t.Fatalf("bundle similarity out of range: %v", nshd.Dot(sum, x))
	}

	// t-SNE utilities.
	hvs := model.QueryHVs(test.Images)
	tcfg := nshd.DefaultTSNEConfig()
	tcfg.Perplexity = 5
	tcfg.Iters = 30
	emb, err := nshd.TSNEEmbed(hvs, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if p := nshd.KNNPurity(emb, test.Labels, 5); p < 0 || p > 1 {
		t.Fatalf("purity %v", p)
	}
}

func TestModelNamesAndLayers(t *testing.T) {
	names := nshd.ModelNames()
	if len(names) != 4 {
		t.Fatalf("zoo names: %v", names)
	}
	for _, n := range names {
		if len(nshd.PaperLayers(n)) == 0 {
			t.Fatalf("%s has no paper layers", n)
		}
	}
}
