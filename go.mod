module nshd

go 1.22
