// Distillation: demonstrates Algorithm 1's knowledge transfer. An NSHD
// student cut at an early, weak layer is trained twice — once with plain
// MASS retraining and once with the teacher's softened predictions blended
// in — and the example sweeps a small α×T grid, mirroring Fig. 8/9.
//
//	go run ./examples/distillation
package main

import (
	"fmt"
	"log"

	"nshd"
	"nshd/internal/nn"
)

func main() {
	log.SetFlags(0)

	dcfg := nshd.DefaultSynthConfig()
	dcfg.Train, dcfg.Test = 256, 128
	train, test := nshd.SynthCIFAR(dcfg)
	means, stds := train.Normalize()
	test.ApplyNormalization(means, stds)

	zoo, err := nshd.BuildModel("effnetb0", 1, train.Classes)
	if err != nil {
		log.Fatal(err)
	}
	pcfg := nshd.DefaultPretrainConfig()
	pcfg.CacheDir = ".cache"
	fmt.Println("pretraining effnetb0 teacher...")
	if _, _, err := nshd.Pretrain(zoo, train, pcfg, nshd.NewRNG(7)); err != nil {
		log.Fatal(err)
	}
	cnnAcc := nn.Evaluate(zoo.Full(), test.Images, test.Labels, 32)

	// Cut at an early stage: the student sees weaker features, so the
	// teacher's knowledge matters (the Fig. 8 setting).
	const layer = 5

	run := func(mutate func(*nshd.Config)) float64 {
		cfg := nshd.DefaultConfig(layer, train.Classes)
		cfg.Epochs = 8
		if mutate != nil {
			mutate(&cfg)
		}
		p, err := nshd.New(zoo, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := p.Train(train, nil); err != nil {
			log.Fatal(err)
		}
		return p.Accuracy(test)
	}

	noKD := run(func(c *nshd.Config) { c.UseKD = false })
	withKD := run(nil)
	fmt.Printf("cut layer %d: no-KD %.3f | KD %.3f | CNN %.3f\n", layer, noKD, withKD, cnnAcc)

	fmt.Println("\nmini hyperparameter grid (test accuracy), cf. Fig. 9:")
	fmt.Printf("%8s", "alpha\\T")
	temps := []float64{12, 15, 17}
	for _, t := range temps {
		fmt.Printf("%8.0f", t)
	}
	fmt.Println()
	for _, a := range []float64{0, 0.3, 0.5, 0.7, 0.9} {
		fmt.Printf("%8.1f", a)
		for _, t := range temps {
			acc := run(func(c *nshd.Config) { c.Alpha, c.Temp = a, t })
			fmt.Printf("%8.3f", acc)
		}
		fmt.Println()
	}
}
