// Clustering: unsupervised learning over NSHD's symbolic representation —
// Sec. III's "diverse learning tasks" claim. Query hypervectors from a
// trained NSHD pipeline are clustered with HD k-means (the formulation of
// the paper's ref [6]); cluster purity against the hidden labels shows the
// symbols carry class structure without any classifier.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"nshd"
	"nshd/internal/hdc"
	"nshd/internal/tensor"
)

func main() {
	log.SetFlags(0)

	dcfg := nshd.DefaultSynthConfig()
	dcfg.Classes = 4
	dcfg.Train, dcfg.Test = 192, 96
	train, test := nshd.SynthCIFAR(dcfg)
	means, stds := train.Normalize()
	test.ApplyNormalization(means, stds)

	zoo, err := nshd.BuildModel("mobilenetv2", 1, train.Classes)
	if err != nil {
		log.Fatal(err)
	}
	pcfg := nshd.DefaultPretrainConfig()
	pcfg.CacheDir = ".cache"
	fmt.Println("pretraining teacher...")
	if _, _, err := nshd.Pretrain(zoo, train, pcfg, nshd.NewRNG(7)); err != nil {
		log.Fatal(err)
	}

	cfg := nshd.DefaultConfig(17, train.Classes)
	cfg.FHat = 32
	p, err := nshd.New(zoo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training NSHD...")
	if _, err := p.Train(train, nil); err != nil {
		log.Fatal(err)
	}

	// Cluster the unseen test set's hypervectors without using labels.
	hvs := p.QueryHVs(test.Images)
	km, err := hdc.NewKMeans(tensor.NewRNG(11), hvs, train.Classes)
	if err != nil {
		log.Fatal(err)
	}
	res := km.Fit(hvs, 25)
	purity := hdc.Purity(res.Assignments, test.Labels, train.Classes)
	fmt.Printf("HD k-means over %d query hypervectors: %d iterations, converged=%v\n",
		test.Len(), res.Iterations, res.Moved == 0)
	fmt.Printf("cluster purity vs hidden labels: %.3f (chance %.3f)\n",
		purity, 1.0/float64(train.Classes))
	fmt.Printf("supervised NSHD accuracy for reference: %.3f\n", p.Accuracy(test))
}
