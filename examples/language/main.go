// Language: demonstrates the symbolic half of neuro-symbolic HD computing on
// its classic home turf — n-gram language identification (the HD-fundamentals
// application the paper's related-work section builds on, refs [12][13]).
// Everything here is pure HD algebra: random item hypervectors, rotate-and-
// bind n-grams, bundled class centroids, cosine cleanup.
//
//	go run ./examples/language
package main

import (
	"fmt"

	"nshd"
)

var corpus = map[string][]string{
	"en": {
		"the sun rises over the quiet hills and the birds begin to sing",
		"a cup of tea in the morning makes everything feel possible",
		"the library was silent except for the turning of pages",
		"children played in the park until the street lights came on",
		"the train rolled slowly through fields of golden wheat",
	},
	"de": {
		"die sonne geht ueber den stillen huegeln auf und die voegel singen",
		"eine tasse kaffee am morgen macht alles moeglich und schoen",
		"die bibliothek war still bis auf das blaettern der seiten",
		"kinder spielten im park bis die strassenlampen angingen",
		"der zug rollte langsam durch felder aus goldenem weizen",
	},
	"it": {
		"il sole sorge sulle colline tranquille e gli uccelli cantano",
		"una tazza di caffe al mattino rende tutto possibile e bello",
		"la biblioteca era silenziosa tranne il fruscio delle pagine",
		"i bambini giocavano nel parco fino alle luci della sera",
		"il treno passava lentamente tra campi di grano dorato",
	},
}

var probes = []struct{ text, want string }{
	{"the evening sky turned orange above the harbor", "en"},
	{"der alte mann sass am fenster und las die zeitung", "de"},
	{"la sera il cielo sopra il porto diventa arancione", "it"},
	{"she walked along the river thinking about tomorrow", "en"},
	{"wir gehen morgen zusammen in die stadt einkaufen", "de"},
	{"domani andiamo insieme in citta a fare la spesa", "it"},
}

func main() {
	enc := nshd.NewSequenceEncoder(nshd.NewRNG(1), 4096, 3)
	clf := nshd.NewSequenceClassifier(enc)
	for lang, sentences := range corpus {
		for _, s := range sentences {
			clf.Learn(lang, s)
		}
	}
	fmt.Println("trained trigram profiles for:", clf.Labels())
	correct := 0
	for _, p := range probes {
		got, sim := clf.Classify(p.text)
		mark := "✗"
		if got == p.want {
			mark = "✓"
			correct++
		}
		fmt.Printf("%s %-4s (sim %.3f)  %q\n", mark, got, sim, p.text)
	}
	fmt.Printf("%d/%d correct\n", correct, len(probes))
}
