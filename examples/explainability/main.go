// Explainability: reproduces the Fig. 11 analysis — t-SNE projections of
// query hypervectors before and after NSHD training, rendered as an ASCII
// scatter plot with per-class glyphs, plus the kNN purity metric that
// quantifies cluster formation.
//
//	go run ./examples/explainability
package main

import (
	"fmt"
	"log"

	"nshd"
)

const glyphs = "0123456789"

func main() {
	log.SetFlags(0)

	dcfg := nshd.DefaultSynthConfig()
	dcfg.Classes = 4 // few classes keep the ASCII plot readable
	dcfg.Train, dcfg.Test = 160, 96
	train, test := nshd.SynthCIFAR(dcfg)
	means, stds := train.Normalize()
	test.ApplyNormalization(means, stds)

	zoo, err := nshd.BuildModel("mobilenetv2", 1, train.Classes)
	if err != nil {
		log.Fatal(err)
	}
	pcfg := nshd.DefaultPretrainConfig()
	pcfg.CacheDir = ".cache"
	fmt.Println("pretraining teacher...")
	if _, _, err := nshd.Pretrain(zoo, train, pcfg, nshd.NewRNG(7)); err != nil {
		log.Fatal(err)
	}

	cfg := nshd.DefaultConfig(17, train.Classes)
	cfg.FHat = 32
	p, err := nshd.New(zoo, cfg)
	if err != nil {
		log.Fatal(err)
	}

	tcfg := nshd.DefaultTSNEConfig()
	tcfg.Perplexity = 12

	embed := func(stage string) {
		hvs := p.QueryHVs(test.Images)
		y, err := nshd.TSNEEmbed(hvs, tcfg)
		if err != nil {
			log.Fatal(err)
		}
		purity := nshd.KNNPurity(y, test.Labels, 8)
		fmt.Printf("\n%s — kNN purity %.3f (chance %.3f)\n", stage, purity, 1.0/float64(train.Classes))
		scatter(y, test.Labels)
	}

	embed("hypervectors at the first iteration")
	fmt.Println("\ntraining NSHD...")
	if _, err := p.Train(train, nil); err != nil {
		log.Fatal(err)
	}
	embed("hypervectors after training")
}

// scatter renders a [N, 2] embedding as a 60x24 character grid.
func scatter(y *nshd.Tensor, labels []int) {
	const w, h = 60, 24
	minX, maxX := y.At(0, 0), y.At(0, 0)
	minY, maxY := y.At(0, 1), y.At(0, 1)
	n := y.Shape[0]
	for i := 0; i < n; i++ {
		if v := y.At(i, 0); v < minX {
			minX = v
		} else if v > maxX {
			maxX = v
		}
		if v := y.At(i, 1); v < minY {
			minY = v
		} else if v > maxY {
			maxY = v
		}
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = make([]byte, w)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	for i := 0; i < n; i++ {
		c := int((y.At(i, 0) - minX) / spanX * (w - 1))
		r := int((y.At(i, 1) - minY) / spanY * (h - 1))
		grid[r][c] = glyphs[labels[i]%len(glyphs)]
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
}
