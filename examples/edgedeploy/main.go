// Edgedeploy: estimates what deploying NSHD buys on edge hardware — the
// Xavier-class energy model (Fig. 4), the ZCU104 DPU resource/throughput
// model (Table I / Fig. 6), and the int8 quantization the FPGA flow applies
// (Sec. VI-B) — for every zoo model without any gradient training, then
// measures real serving throughput through the compiled inference engine.
//
//	go run ./examples/edgedeploy
package main

import (
	"fmt"
	"log"
	"time"

	"nshd"
)

func main() {
	log.SetFlags(0)

	dpu := nshd.DefaultDPU()
	em := nshd.XavierModel()

	// Table I: the accelerator's footprint at D=3000.
	rep := dpu.Resources(3000)
	fmt.Println("ZCU104 programmable-logic utilization (DPU core + HD unit, D=3000):")
	for _, r := range rep.Rows {
		fmt.Printf("  %-5s %7d / %7d  (%.2f%%)\n", r.Name, r.Used, r.Available, r.Utilization)
	}
	fmt.Printf("  clock %.0f MHz, power %.2f W\n\n", rep.FreqMHz, rep.Watts)

	fmt.Printf("%-12s %6s  %10s %10s %8s  %9s %9s %8s\n",
		"model", "layer", "CNN uJ", "NSHD uJ", "saved", "CNN FPS", "NSHD FPS", "speedup")
	for _, name := range nshd.ModelNames() {
		layers := nshd.PaperLayers(name)
		zoo, err := nshd.BuildModel(name, 1, 10)
		if err != nil {
			log.Fatal(err)
		}
		for _, layer := range layers[:2] {
			cfg := nshd.DefaultConfig(layer, 10)
			p, err := nshd.New(zoo, cfg)
			if err != nil {
				log.Fatal(err)
			}
			costs := p.Costs()
			cnnE := em.CNNEnergyPJ(zoo.FullStats())
			nshdE := em.NSHDEnergyPJ(costs, p.CutStats())
			cnnFPS := dpu.CNNFPS(zoo.FullStats().MACs)
			nshdFPS := dpu.NSHDFPS(costs)
			fmt.Printf("%-12s %6d  %10.1f %10.1f %7.1f%%  %9.0f %9.0f %+7.1f%%\n",
				name, layer, cnnE/1e6, nshdE/1e6, 100*(1-nshdE/cnnE),
				cnnFPS, nshdFPS, 100*(nshdFPS/cnnFPS-1))
		}
	}

	fmt.Println("\ndimension sweep (mobilenetv2 @ layer 14):")
	zoo, _ := nshd.BuildModel("mobilenetv2", 1, 10)
	fmt.Printf("%8s %12s %12s %12s\n", "D", "NSHD FPS", "proj bytes", "class bytes")
	for _, d := range []int{1000, 3000, 10000} {
		cfg := nshd.DefaultConfig(14, 10)
		cfg.D = d
		p, err := nshd.New(zoo, cfg)
		if err != nil {
			log.Fatal(err)
		}
		c := p.Costs()
		fmt.Printf("%8d %12.0f %12d %12d\n", d, dpu.NSHDFPS(c), c.ProjectionBytes, c.ClassHVBytes)
	}

	// Measured (not modeled) serving throughput on this machine: freeze the
	// pipeline into the zero-allocation inference engine and time it. The
	// class model is single-pass bundled — deployment cares about the data
	// path, not the decision quality of an untrained model.
	fmt.Println("\nserving engine (mobilenetv2 @ layer 5, D=3000, this CPU):")
	train, _ := nshd.SynthCIFAR(nshd.SynthConfig{
		Classes: 10, Train: 64, Test: 8, Size: 32, Noise: 0.2, Seed: 9,
	})
	for _, packed := range []bool{false, true} {
		cfg := nshd.DefaultConfig(5, 10)
		cfg.PackedInference = packed
		p, err := nshd.New(zoo, cfg)
		if err != nil {
			log.Fatal(err)
		}
		feats := p.ExtractFeatures(train.Images)
		_, _, signed := p.Symbolize(feats, false)
		p.HD.InitBundle(signed, train.Labels)
		eng, err := nshd.Compile(p)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := eng.Predict(train.Images); err != nil { // warm
			log.Fatal(err)
		}
		const reps = 3
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := eng.Predict(train.Images); err != nil {
				log.Fatal(err)
			}
		}
		n := train.Images.Shape[0]
		fps := float64(reps*n) / time.Since(start).Seconds()
		kernel := "float "
		if packed {
			kernel = "packed"
		}
		fmt.Printf("  %s kernel: %6.1f img/s  (chunk %d, scratch %.1f MiB/worker, stages %v)\n",
			kernel, fps, eng.ChunkSize(), float64(eng.ArenaBytes())/(1<<20), eng.Stages())
	}
}
