// Quickstart: train a CNN teacher on the synthetic image workload, cut it
// into an NSHD feature extractor, distill into the HD model, and compare
// accuracy and inference cost against the original CNN.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"nshd"
	"nshd/internal/nn"
)

func main() {
	log.SetFlags(0)

	// 1. A CIFAR-shaped synthetic workload (see internal/dataset for why
	//    this stands in for CIFAR-10 in an offline build).
	dcfg := nshd.DefaultSynthConfig()
	dcfg.Classes = 10
	dcfg.Train, dcfg.Test = 256, 128
	train, test := nshd.SynthCIFAR(dcfg)
	means, stds := train.Normalize()
	test.ApplyNormalization(means, stds)
	fmt.Printf("workload: %d train / %d test samples, %d classes\n",
		train.Len(), test.Len(), train.Classes)

	// 2. Pretrain the teacher CNN (cached under .cache on re-runs).
	zoo, err := nshd.BuildModel("effnetb0", 1, train.Classes)
	if err != nil {
		log.Fatal(err)
	}
	pcfg := nshd.DefaultPretrainConfig()
	pcfg.CacheDir = ".cache"
	fmt.Println("pretraining effnetb0 teacher (first run takes a few minutes)...")
	trainAcc, cached, err := nshd.Pretrain(zoo, train, pcfg, nshd.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	cnnTestAcc := nn.Evaluate(zoo.Full(), test.Images, test.Labels, 32)
	fmt.Printf("teacher: train acc %.3f, test acc %.3f (cached=%v)\n", trainAcc, cnnTestAcc, cached)

	// 3. Assemble NSHD: cut at layer 7 (a paper cut point), D=3000, F̂=100.
	cfg := nshd.DefaultConfig(7, train.Classes)
	model, err := nshd.New(zoo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := model.Train(train, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NSHD: teacher-on-train %.3f, final HD train acc %.3f\n",
		report.TeacherTrainAccuracy, report.FinalTrainAccuracy)
	fmt.Printf("NSHD test accuracy: %.3f (CNN: %.3f)\n", model.Accuracy(test), cnnTestAcc)

	// 4. Inference cost side-by-side.
	costs := model.Costs()
	cnnMACs, cnnBytes := model.CNNCosts()
	fmt.Printf("cost per inference: NSHD %d MACs vs CNN %d MACs (%.1f%% saved)\n",
		costs.TotalMACs(), cnnMACs, 100*(1-float64(costs.TotalMACs())/float64(cnnMACs)))
	fmt.Printf("model size: NSHD %d bytes vs CNN %d bytes\n", costs.TotalBytes(), cnnBytes)

	// 5. Persist and reload.
	if err := model.Save(".cache/quickstart-nshd.gob"); err != nil {
		log.Fatal(err)
	}
	reloaded, err := nshd.LoadPipeline(".cache/quickstart-nshd.gob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded model test accuracy: %.3f\n", reloaded.Accuracy(test))
}
